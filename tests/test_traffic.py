"""Tests for :mod:`repro.apps.traffic`: determinism and statistical sanity.

The serving benchmarks and the QoS work both lean on these generators, so
two properties must hold rock-solid: a seed fully determines a trace (same
requests, same order, same sizes, same tenants), and the statistical shape
each generator promises — Poisson steadiness, on/off burstiness, heavy
tails — actually shows up in the moments of what it emits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.traffic import (
    TRAFFIC_PATTERNS,
    bursty_trace,
    heavy_tail_trace,
    steady_trace,
)
from repro.serve.request import Request, RequestKind


def fingerprint(trace: list[Request]) -> list[tuple]:
    return [
        (r.request_id, r.tenant, r.kind.value, r.items, r.arrival_s, r.model)
        for r in trace
    ]


GENERATORS = {
    "steady": lambda seed: steady_trace(rate_rps=2000.0, duration_s=0.5, seed=seed),
    "bursty": lambda seed: bursty_trace(
        burst_rate_rps=8000.0, duration_s=0.5, seed=seed
    ),
    "heavy-tail": lambda seed: heavy_tail_trace(
        rate_rps=2000.0, duration_s=0.5, seed=seed
    ),
}


# -- seeded determinism --------------------------------------------------------------


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_same_seed_reproduces_the_exact_trace(name):
    first = GENERATORS[name](seed=42)
    second = GENERATORS[name](seed=42)
    assert fingerprint(first) == fingerprint(second)
    assert len(first) > 50


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_different_seeds_differ(name):
    assert fingerprint(GENERATORS[name](seed=1)) != fingerprint(
        GENERATORS[name](seed=2)
    )


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_traces_are_well_formed(name):
    trace = GENERATORS[name](seed=7)
    arrivals = [r.arrival_s for r in trace]
    assert arrivals == sorted(arrivals)
    assert all(0.0 < t < 0.5 for t in arrivals)
    assert all(r.items >= 1 for r in trace)
    assert all(
        (r.model is not None) == (r.kind is RequestKind.INFERENCE) for r in trace
    )
    # Request ids are unique and assigned in arrival order.
    ids = [r.request_id for r in trace]
    assert ids == sorted(set(ids))
    # Several distinct tenants appear under the default mix.
    assert len({r.tenant for r in trace}) >= 3


def test_registry_names_the_three_patterns():
    assert sorted(TRAFFIC_PATTERNS) == ["bursty", "heavy-tail", "steady"]
    for name, generator in GENERATORS.items():
        assert TRAFFIC_PATTERNS[name] is not None
        assert generator(seed=0)  # every registry entry emits something


# -- statistical sanity ---------------------------------------------------------------


def test_steady_trace_rate_and_interarrival_moments():
    """Poisson arrivals: mean gap ≈ 1/rate, CV of gaps ≈ 1."""
    trace = steady_trace(rate_rps=5000.0, duration_s=2.0, seed=3)
    gaps = np.diff([r.arrival_s for r in trace])
    assert len(trace) == pytest.approx(10000, rel=0.1)
    assert gaps.mean() == pytest.approx(1 / 5000.0, rel=0.1)
    cv = gaps.std() / gaps.mean()
    assert 0.8 < cv < 1.2  # exponential gaps: coefficient of variation 1


def test_heavy_tail_interarrival_moments():
    """Pareto gaps keep the requested mean rate but are far burstier."""
    rate = 2000.0
    trace = heavy_tail_trace(rate_rps=rate, duration_s=5.0, seed=5, pareto_shape=1.5)
    gaps = np.diff([r.arrival_s for r in trace])
    # The scale is chosen so the mean inter-arrival matches 1/rate.
    assert gaps.mean() == pytest.approx(1 / rate, rel=0.25)
    # Shape 1.5 has infinite variance: the empirical CV must far exceed the
    # exponential baseline of 1, and the largest gap dwarfs the mean.
    cv = gaps.std() / gaps.mean()
    assert cv > 1.5
    assert gaps.max() > 20 * gaps.mean()


def test_heavy_tail_size_moments():
    """Log-normal sizes: mean ≈ mean_items with a genuinely heavy tail."""
    trace = heavy_tail_trace(
        rate_rps=2000.0, duration_s=5.0, seed=11, mean_items=8.0, size_sigma=1.2
    )
    sizes = np.array(
        [r.items for r in trace if r.kind is not RequestKind.INFERENCE], dtype=float
    )
    assert sizes.mean() == pytest.approx(8.0, rel=0.3)
    assert sizes.max() > 10 * sizes.mean()  # a few huge requests exist
    assert np.median(sizes) < sizes.mean()  # right-skewed distribution


def test_bursty_trace_gaps_split_into_on_and_off_phases():
    trace = bursty_trace(
        burst_rate_rps=10000.0, duration_s=2.0, seed=9, burst_s=0.02, idle_s=0.08
    )
    gaps = np.diff([r.arrival_s for r in trace])
    in_burst = gaps[gaps < 1e-3]
    idle = gaps[gaps > 0.01]
    # Most arrivals are within-burst, but real idle gaps punctuate them.
    assert len(in_burst) > 10 * max(len(idle), 1)
    assert len(idle) >= 5
    assert idle.mean() > 50 * in_burst.mean()


def test_pareto_shape_must_give_finite_mean():
    with pytest.raises(ValueError, match="pareto shape"):
        heavy_tail_trace(rate_rps=100.0, duration_s=1.0, pareto_shape=1.0)
