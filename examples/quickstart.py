"""Quickstart: the unified batch-first runtime in one script.

Walks the new front door of the reproduction: a :class:`repro.Session` owns
the keys and provides *batch* encrypt / decrypt / bootstrap (sized to the
paper's device x core batch geometry), and :func:`repro.run` executes one
workload definition on every backend — functionally on the real TFHE
implementation, cycle-level on the Strix simulator, and on the CPU / GPU
analytical baselines.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro import Session, run
from repro.sim.compiler import full_adder_netlist
from repro.tfhe.lut import LookUpTable


def main() -> None:
    print("== Strix reproduction quickstart ==")

    # 1. A session owns the keys (client/server split) and the batch geometry.
    start = time.perf_counter()
    session = Session("TOY", seed=42)
    keys = session.generate_server_keys()
    print(
        f"Key generation took {time.perf_counter() - start:.2f} s "
        f"(evaluation keys: {keys.total_bytes / 1024:.0f} KiB)"
    )
    print(
        f"Batch geometry: {session.device_batch_size} cores x "
        f"{session.core_batch_size} LWEs/core = {session.batch_capacity} LWEs/epoch\n"
    )

    # 2. Batch encryption and encrypted arithmetic.
    messages = [0, 1, 2, 3, 1, 2]
    ciphertexts = session.encrypt_batch(messages)
    total = ciphertexts[0] + ciphertexts[1]
    print(f"encrypt_batch({messages}) -> decrypt_batch = {session.decrypt_batch(ciphertexts)}")
    print(f"Enc({messages[0]}) + Enc({messages[1]}) decrypts to {session.decrypt(total)}")

    # 3. Batch programmable bootstrapping: one function over many ciphertexts.
    p = session.params.message_modulus
    squared = session.bootstrap_batch(ciphertexts, lambda m: (m * m) % p)
    print(f"bootstrap_batch(x^2 mod {p}) = {session.decrypt_batch(squared)}")
    square_lut = LookUpTable.from_function(lambda m: (m * m) % p, session.params)
    assert session.decrypt_batch(session.apply_lut_batch(ciphertexts, square_lut)) == [
        (m * m) % p for m in messages
    ]

    # 4. Vectorized gate application (every output is a real bootstrap).
    lhs = session.encrypt_boolean_batch([True, True, False])
    rhs = session.encrypt_boolean_batch([True, False, False])
    for gate in ("and", "xor", "nand"):
        outputs = session.decrypt_boolean_batch(session.gate_batch(gate, lhs, rhs))
        print(f"gate_batch({gate!r:>7}, [T,T,F], [T,F,F]) = {outputs}")

    # 5. One netlist, every backend.  The 2-bit adder below computes 1 + 3.
    adder = full_adder_netlist(session.params, bits=2)
    inputs = {"a0": True, "a1": False, "b0": True, "b1": True}
    print("\n== One workload, three execution backends ==")
    functional = run(adder, backend="reference", session=session, inputs=inputs)
    bits = functional.outputs[0]
    value = int(bits["axb0"]) + 2 * int(bits["s1"]) + 4 * int(bits["c1"])
    print(f"reference (functional): 1 + 3 = {value}  [decrypted {bits}]")

    # The same netlist, rebound to parameter set I and batched over 1,024
    # independent instances, on the simulator and the analytical baselines.
    for backend in ("strix-sim", "gpu-analytical", "cpu-analytical"):
        result = run(adder, backend=backend, params="I", instances=1024)
        print(result.render())

    print("\nEvery gate output above was produced by a programmable bootstrap —")
    print("the operation Strix accelerates by three orders of magnitude over a CPU.")


if __name__ == "__main__":
    main()
