"""Reference backend: functional execution on the real TFHE substrate.

Interprets a :class:`~repro.sim.compiler.Netlist` operation by operation with
the actual gates / PBS / linear arithmetic of :mod:`repro.tfhe` — every gate
output is a real bootstrap.  This is the ground truth the performance
backends are modeled against: the same netlist the simulator costs can be
decrypted and checked here.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

import numpy as np

from repro.params import TFHEParameters
from repro.runtime.backend import Backend, register_backend
from repro.runtime.result import RunResult
from repro.runtime.session import _GATE_METHODS, Session
from repro.runtime.workload import WorkloadLike, as_netlist
from repro.sim.compiler import Netlist, Operation
from repro.tfhe.batch import (
    LweBatch,
    batch_gate,
    batch_programmable_bootstrap,
    resolve_kernels,
)
from repro.tfhe.context import ServerKeys
from repro.tfhe.lut import LookUpTable
from repro.tfhe.lwe import LweCiphertext

#: How a wire's ciphertext is decoded: gate outputs (and boolean inputs) use
#: the ``±q/8`` gate-bootstrapping encoding, integer inputs and LUT/linear
#: outputs the message encoding.  Pre-encrypted ciphertexts passed straight
#: in are untyped — the caller vouches for their encoding — and decode as
#: messages if read back directly.
_BOOLEAN, _MESSAGE, _ANY = "boolean", "message", "any"

#: Default sessions for key-less reference runs, keyed by parameter set, so
#: repeated ``run(netlist, backend="reference")`` calls reuse the (expensive)
#: evaluation keys instead of regenerating them per call.
_DEFAULT_SESSIONS: dict[TFHEParameters, Session] = {}


def _default_session(params: TFHEParameters) -> Session:
    if params not in _DEFAULT_SESSIONS:
        _DEFAULT_SESSIONS[params] = Session(params, seed=0)
    return _DEFAULT_SESSIONS[params]


class ReferenceBackend(Backend):
    """Functionally executes netlists with the real TFHE implementation."""

    name = "reference"

    def run(
        self,
        workload: WorkloadLike,
        *,
        params: TFHEParameters | str | None = None,
        session: Session | None = None,
        inputs: Mapping[str, Any] | Sequence[Mapping[str, Any]] | None = None,
        instances: int = 1,
        outputs: Sequence[str] | None = None,
        kernels: str | None = None,
        **options: Any,
    ) -> RunResult:
        """Execute a netlist functionally and decrypt its outputs.

        ``inputs`` maps primary-input wires to plaintext values (``bool`` for
        the gate encoding, ``int`` for the message encoding) or to
        pre-encrypted ciphertexts; missing wires default to ``False``.  Pass
        a list of mappings to execute several independent instances — the
        batch the accelerator would fold into one epoch.

        ``kernels`` selects the execution backend for the instance batch:
        ``"scalar"`` interprets instances one by one with the per-ciphertext
        kernels, ``"vectorized"`` stacks all instances and runs each
        operation once through the batch kernels of :mod:`repro.tfhe.batch`
        (bit-for-bit equal server-side, so decrypted outputs are identical).
        ``None`` (default) inherits the session's ``kernels`` setting, which
        is ``"scalar"`` unless the caller opted in.
        """
        netlist = as_netlist(workload, params)
        if session is None:
            session = _default_session(netlist.params)
        elif session.params != netlist.params:
            raise ValueError(
                f"session parameter set {session.params.name!r} does not match "
                f"the workload's {netlist.params.name!r}"
            )
        session.generate_server_keys()
        effective_kernels = (
            session.kernels if kernels is None else resolve_kernels(kernels)
        )

        if inputs is None:
            input_batches: list[Mapping[str, Any]] = [{}] * max(instances, 1)
        elif isinstance(inputs, Mapping):
            input_batches = [inputs] * max(instances, 1)
        else:
            input_batches = list(inputs)
            if instances != 1 and instances != len(input_batches):
                raise ValueError(
                    f"instances={instances} conflicts with {len(input_batches)} input mappings"
                )
        output_wires = list(outputs) if outputs is not None else netlist.output_wires()
        # LUT tables depend only on (function, params): tabulate each one once
        # for the whole instance batch.
        luts = {
            index: LookUpTable.from_function(operation.function or (lambda m: m), netlist.params)
            for index, operation in enumerate(netlist.operations)
            if operation.kind == "lut"
        }

        start = time.perf_counter()
        if effective_kernels == "vectorized" and input_batches:
            decrypted = self._execute_batch(
                netlist, session, input_batches, output_wires, luts
            )
        else:
            decrypted = [
                self._execute_instance(netlist, session, instance_inputs, output_wires, luts)
                for instance_inputs in input_batches
            ]
        elapsed = time.perf_counter() - start

        pbs_count = netlist.pbs_count() * len(input_batches)
        return RunResult(
            workload=netlist.name,
            backend=self.name,
            parameter_set=netlist.params.name,
            latency_s=elapsed,
            pbs_count=pbs_count,
            outputs=decrypted,
            details={
                "instances": len(input_batches),
                "wall_clock": True,
                "kernels": effective_kernels,
            },
        )

    # -- interpreter ----------------------------------------------------------------

    def _execute_instance(
        self,
        netlist: Netlist,
        session: Session,
        inputs: Mapping[str, Any],
        output_wires: Sequence[str],
        luts: Mapping[int, LookUpTable],
    ) -> dict[str, int | bool]:
        values: dict[str, LweCiphertext] = {}
        tags: dict[str, str] = {}
        for wire in netlist.primary_inputs:
            value = inputs.get(wire, False)
            if isinstance(value, LweCiphertext):
                values[wire], tags[wire] = value, _ANY
            elif isinstance(value, bool):
                values[wire], tags[wire] = session.encrypt_boolean(value), _BOOLEAN
            else:
                values[wire], tags[wire] = session.encrypt(int(value)), _MESSAGE

        for index, operation in enumerate(netlist.operations):
            values[operation.output], tags[operation.output] = self._apply(
                operation, session, values, tags, luts.get(index)
            )

        result: dict[str, int | bool] = {}
        for wire in output_wires:
            if wire not in values:
                raise KeyError(f"requested output wire {wire!r} was never produced")
            if tags[wire] == _BOOLEAN:
                result[wire] = session.decrypt_boolean(values[wire])
            else:
                result[wire] = session.decrypt(values[wire])
        return result

    def _apply(
        self,
        operation: Operation,
        session: Session,
        values: dict[str, LweCiphertext],
        tags: dict[str, str],
        lut: LookUpTable | None,
    ) -> tuple[LweCiphertext, str]:
        operands = [values[wire] for wire in operation.inputs]
        # Gates work in the ±q/8 boolean encoding; LUT and linear operations
        # in the integer message encoding.  A wire crossing domains would
        # decode to garbage silently — the one thing a ground-truth backend
        # must never do — so mixing is rejected loudly.  Untyped passthrough
        # ciphertexts (tag "any") are the caller's responsibility.
        wrong_tag = _MESSAGE if operation.kind == "gate" else _BOOLEAN
        mismatched = [w for w in operation.inputs if tags[w] == wrong_tag]
        if mismatched:
            raise ValueError(
                f"{operation.kind} operation {operation.output!r} consumes "
                f"{wrong_tag}-encoded wire(s) {mismatched}; gates use the ±q/8 "
                "boolean encoding while lut/linear operations use the integer "
                "message encoding — the two cannot be mixed on one wire"
            )
        if operation.kind == "gate":
            method = getattr(session.gates(), _GATE_METHODS[operation.name])
            return method(*operands), _BOOLEAN
        if operation.kind == "lut":
            accumulator = operands[0]
            for operand in operands[1:]:
                accumulator = accumulator + operand
            return session.apply_lut(accumulator, lut), _MESSAGE
        if operation.kind == "linear":
            coefficients = operation.coefficients or (1,) * len(operands)
            accumulator: LweCiphertext | None = None
            for coefficient, operand in zip(coefficients, operands):
                if coefficient == 0:
                    continue
                term = operand if coefficient == 1 else operand.scalar_multiply(int(coefficient))
                accumulator = term if accumulator is None else accumulator + term
            if accumulator is None:
                accumulator = LweCiphertext.trivial(0, operands[0].dimension, session.params)
            tag = tags[operation.inputs[0]] if operation.inputs else _MESSAGE
            return accumulator, tag
        raise ValueError(f"unknown operation kind {operation.kind!r}")

    # -- batched interpreter ---------------------------------------------------------

    def _execute_batch(
        self,
        netlist: Netlist,
        session: Session,
        input_batches: Sequence[Mapping[str, Any]],
        output_wires: Sequence[str],
        luts: Mapping[int, LookUpTable],
    ) -> list[dict[str, int | bool]]:
        """Execute all instances at once with the stacked batch kernels.

        Each wire carries one :class:`LweBatch` holding every instance's
        ciphertext, and each operation runs once over the whole stack.  The
        batch kernels are bit-for-bit equal to the scalar interpreter, so
        the decrypted outputs match ``_execute_instance`` exactly (only the
        RNG *order* of input encryption differs: wire-major here versus
        instance-major in the scalar loop).
        """
        keys = session.generate_server_keys()
        values: dict[str, LweBatch] = {}
        tags: dict[str, str] = {}
        for wire in netlist.primary_inputs:
            ciphertexts: list[LweCiphertext] = []
            wire_tags: set[str] = set()
            for instance_inputs in input_batches:
                value = instance_inputs.get(wire, False)
                if isinstance(value, LweCiphertext):
                    ciphertexts.append(value)
                    wire_tags.add(_ANY)
                elif isinstance(value, bool):
                    ciphertexts.append(session.encrypt_boolean(value))
                    wire_tags.add(_BOOLEAN)
                else:
                    ciphertexts.append(session.encrypt(int(value)))
                    wire_tags.add(_MESSAGE)
            if len(wire_tags) != 1:
                raise ValueError(
                    f"vectorized kernels need one encoding per wire, but input wire "
                    f"{wire!r} mixes {sorted(wire_tags)} across instances"
                )
            values[wire] = LweBatch.from_ciphertexts(ciphertexts)
            tags[wire] = wire_tags.pop()

        for index, operation in enumerate(netlist.operations):
            values[operation.output], tags[operation.output] = self._apply_batch(
                operation, session, keys, values, tags, luts.get(index)
            )

        results: list[dict[str, int | bool]] = [{} for _ in input_batches]
        for wire in output_wires:
            if wire not in values:
                raise KeyError(f"requested output wire {wire!r} was never produced")
            ciphertexts = values[wire].to_ciphertexts()
            if tags[wire] == _BOOLEAN:
                decoded: Sequence[int | bool] = session.decrypt_boolean_batch(ciphertexts)
            else:
                decoded = session.decrypt_batch(ciphertexts)
            for result, value in zip(results, decoded):
                result[wire] = value
        return results

    def _apply_batch(
        self,
        operation: Operation,
        session: Session,
        keys: ServerKeys,
        values: dict[str, LweBatch],
        tags: dict[str, str],
        lut: LookUpTable | None,
    ) -> tuple[LweBatch, str]:
        operands = [values[wire] for wire in operation.inputs]
        # Same encoding-domain policy as the scalar interpreter: gates work in
        # the ±q/8 boolean encoding, lut/linear in the message encoding, and a
        # wire crossing domains is rejected loudly.
        wrong_tag = _MESSAGE if operation.kind == "gate" else _BOOLEAN
        mismatched = [w for w in operation.inputs if tags[w] == wrong_tag]
        if mismatched:
            raise ValueError(
                f"{operation.kind} operation {operation.output!r} consumes "
                f"{wrong_tag}-encoded wire(s) {mismatched}; gates use the ±q/8 "
                "boolean encoding while lut/linear operations use the integer "
                "message encoding — the two cannot be mixed on one wire"
            )
        params = session.params
        if operation.kind == "gate":
            result = batch_gate(
                operation.name,
                tuple(operands),
                keys.bootstrapping_key,
                keys.keyswitching_key,
                params,
            )
            return result, _BOOLEAN
        if operation.kind == "lut":
            accumulator = LweBatch(
                sum(operand.masks for operand in operands),
                sum(operand.bodies for operand in operands),
                params,
            )
            entries = lut.entries
            bootstrapped = batch_programmable_bootstrap(
                accumulator,
                lambda m: int(entries[m % len(entries)]),
                keys.bootstrapping_key,
                lut.params,
                keys.keyswitching_key,
            )
            return bootstrapped.ciphertexts, _MESSAGE
        if operation.kind == "linear":
            coefficients = operation.coefficients or (1,) * len(operands)
            masks: np.ndarray | None = None
            bodies: np.ndarray | None = None
            for coefficient, operand in zip(coefficients, operands):
                if coefficient == 0:
                    continue
                term_masks = operand.masks * int(coefficient)
                term_bodies = operand.bodies * int(coefficient)
                masks = term_masks if masks is None else masks + term_masks
                bodies = term_bodies if bodies is None else bodies + term_bodies
            if masks is None or bodies is None:
                masks = np.zeros((len(operands[0]), operands[0].dimension), dtype=np.int64)
                bodies = np.zeros(len(operands[0]), dtype=np.int64)
            tag = tags[operation.inputs[0]] if operation.inputs else _MESSAGE
            return LweBatch(masks, bodies, params), tag
        raise ValueError(f"unknown operation kind {operation.kind!r}")


register_backend(ReferenceBackend.name, ReferenceBackend)
