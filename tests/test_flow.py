"""Tests of the overload-protection loop (:mod:`repro.flow`): admission
policies and their registry, bounded queues, deadline propagation, the
determinism of shedding, composition with fault schedules, and the wire
leg — credit windows, BUSY replies, per-request timeouts, retry with
backoff and the circuit breaker.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.apps.traffic import steady_trace
from repro.errors import UnknownAdmissionPolicyError
from repro.faults import FaultSchedule
from repro.flow import (
    AdmissionLimits,
    TenantQuotaPolicy,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    FlowController,
    QueueOverflowError,
    RequestRejectedError,
    RequestTimeoutError,
    RetryPolicy,
    ServerBusyError,
    get_admission_policy,
    list_admission_policies,
)
from repro.net import AsyncNetClient, NetError, NetServer, protocol
from repro.net.loadgen import closed_loop_async, replay_trace_async
from repro.serve import Request, RequestQueue, Server
from repro.serve.request import RequestKind

SATURATING = dict(rate_rps=20000.0, duration_s=0.05, seed=11, tenants=4)
KIND_MIX = {RequestKind.BOOTSTRAP: 1.0}


def make_request(request_id: int, tenant: str = "t0", arrival_s: float = 0.0,
                 deadline_s: float | None = None) -> Request:
    return Request.make(request_id, tenant, "bootstrap", items=1,
                        arrival_s=arrival_s, deadline_s=deadline_s)


def overloaded_server(admission: str, **overrides) -> Server:
    options = dict(
        devices=1,
        admission=admission,
        queue_capacity=8,
        tenant_capacity=4,
        seed=0,
    )
    options.update(overrides)
    return Server(**options)


# -- registry -----------------------------------------------------------------------


class TestAdmissionRegistry:
    def test_lists_known_policies(self):
        assert list_admission_policies() == [
            "reject-newest", "shed-oldest", "tenant-quota",
        ]

    def test_did_you_mean(self):
        with pytest.raises(UnknownAdmissionPolicyError, match="shed-oldest"):
            get_admission_policy("shed-odlest")
        with pytest.raises(ValueError, match="admission polic"):
            get_admission_policy("nope")

    def test_limits_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            AdmissionLimits(queue_capacity=0)
        assert not AdmissionLimits().bounded
        assert AdmissionLimits(tenant_capacity=2).bounded

    def test_flow_imports_first(self):
        # repro.flow and repro.serve import each other; a fresh process
        # must be able to start from either side of the cycle.
        import subprocess
        import sys

        for first in ("repro.flow", "repro.serve", "repro.net"):
            command = (
                f"import {first}; from repro.flow import QueueOverflowError; "
                "from repro.serve import Server"
            )
            subprocess.run([sys.executable, "-c", command], check=True)


# -- policies against a real queue --------------------------------------------------


class TestAdmissionDecisions:
    def controller(self, policy: str, **kw) -> FlowController:
        kw.setdefault("queue_capacity", 2)
        return FlowController(policy=policy, **kw)

    def test_reject_newest_rejects_at_capacity(self):
        queue, flow = RequestQueue(), self.controller("reject-newest")
        for rid in (1, 2):
            admitted, victims, _ = flow.try_admit(queue, make_request(rid))
            assert admitted and not victims
            queue.push(make_request(rid))
        admitted, victims, reason = flow.try_admit(queue, make_request(3))
        assert not admitted and not victims and "at capacity" in reason

    def test_shed_oldest_evicts_the_head(self):
        queue, flow = RequestQueue(), self.controller("shed-oldest")
        queue.push(make_request(1, arrival_s=0.0))
        queue.push(make_request(2, arrival_s=1.0))
        admitted, victims, _ = flow.try_admit(queue, make_request(3, arrival_s=2.0))
        assert admitted
        assert [victim.request_id for victim in victims] == [1]
        assert queue.depth == 1  # the victim is already popped

    def test_tenant_capacity_is_per_tenant(self):
        queue = RequestQueue()
        flow = FlowController(
            policy="reject-newest", queue_capacity=10, tenant_capacity=1
        )
        queue.push(make_request(1, tenant="a"))
        flow.try_admit(queue, make_request(1, tenant="a"))
        admitted, _, reason = flow.try_admit(queue, make_request(2, tenant="a"))
        assert not admitted and "tenant" in reason
        admitted, _, _ = flow.try_admit(queue, make_request(3, tenant="b"))
        assert admitted

    def test_tenant_quota_favours_heavier_weights(self):
        queue = RequestQueue()
        policy = TenantQuotaPolicy(weights={"a": 3.0, "b": 1.0})
        flow = FlowController(policy=policy, queue_capacity=4)
        queue.push(make_request(1, tenant="a"))
        queue.push(make_request(2, tenant="b"))
        # Shares over capacity 4: 'a' gets 3 slots, 'b' gets 1 — already full.
        admitted, _, reason = flow.try_admit(queue, make_request(3, tenant="b"))
        assert not admitted and "quota" in reason
        admitted, _, _ = flow.try_admit(queue, make_request(4, tenant="a"))
        assert admitted

    def test_retry_after_grows_with_depth(self):
        queue, flow = RequestQueue(), self.controller("reject-newest")
        empty = flow.retry_after_s(queue, 2e-3)
        queue.push(make_request(1))
        queue.push(make_request(2))
        assert flow.retry_after_s(queue, 2e-3) > empty > 0.0


# -- bounded queue (satellite 1) ----------------------------------------------------


class TestBoundedQueue:
    def test_overflow_is_loud_and_typed(self):
        queue = RequestQueue(capacity=2)
        queue.push(make_request(1))
        queue.push(make_request(2))
        with pytest.raises(QueueOverflowError, match="admission"):
            queue.push(make_request(3))
        assert queue.depth == 2

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            RequestQueue(capacity=0)

    def test_server_bounds_queue_only_without_admission(self):
        bounded = Server(devices=1, queue_capacity=1)
        assert bounded.queue.capacity == 1
        governed = overloaded_server("reject-newest")
        assert governed.queue.capacity is None  # the policy is the bound

    def test_sync_staging_is_not_bounded_by_capacity(self):
        # capacity bounds the *runtime* queue depth; sync submit() only
        # stages a trace, so a long trace whose instantaneous depth never
        # exceeds the bound must simulate cleanly.
        server = Server(devices=1, queue_capacity=2)
        for index in range(8):
            server.submit("t0", "bootstrap", at=index * 0.1)
        report = server.simulate(label="staged")
        assert report.metrics.requests == 8

    def test_runtime_overflow_is_still_loud(self):
        server = Server(
            devices=1, queue_capacity=2, batch_capacity=64, max_batch_delay_s=1.0
        )
        trace = [make_request(rid, arrival_s=0.0) for rid in (1, 2, 3)]
        with pytest.raises(QueueOverflowError, match="admission"):
            server.simulate(trace, label="burst")


# -- deadlines ----------------------------------------------------------------------


class TestDeadlines:
    def test_expired_is_strict(self):
        request = make_request(1, deadline_s=1.0)
        assert not request.expired(1.0) and request.expired(1.0 + 1e-9)
        assert not make_request(2).expired(1e9)

    def test_simulate_expires_overdue_work(self):
        server = Server(devices=1, admission="reject-newest", queue_capacity=64)
        trace = [
            make_request(1, arrival_s=0.0, deadline_s=1e-9),
            make_request(2, arrival_s=0.0),
        ]
        report = server.simulate(trace, label="deadline")
        overload = report.metrics.overload
        assert overload["expired"] == 1 and report.metrics.requests == 1

    def test_relative_deadline_resolves_against_arrival(self):
        server = Server(devices=1)
        server.submit("t0", "bootstrap", deadline_s=0.5)
        request = server.queue.pop()
        assert request.deadline_s == pytest.approx(request.arrival_s + 0.5)


# -- determinism (satellite 4) ------------------------------------------------------


class TestShedDeterminism:
    @pytest.mark.parametrize("policy", ["reject-newest", "shed-oldest", "tenant-quota"])
    def test_bit_for_bit_shed_decisions(self, policy):
        trace = steady_trace(**SATURATING, kind_mix=KIND_MIX)
        first = overloaded_server(policy).simulate(trace, label="overload")
        second = overloaded_server(policy).simulate(trace, label="overload")
        assert first.to_dict() == second.to_dict()
        overload = first.metrics.overload
        assert overload["rejected"] + overload["shed"] > 0

    @pytest.mark.parametrize("policy", ["reject-newest", "shed-oldest", "tenant-quota"])
    def test_conservation_under_overload(self, policy):
        trace = steady_trace(**SATURATING, kind_mix=KIND_MIX)
        report = overloaded_server(policy).simulate(trace, label="overload")
        overload = report.metrics.overload
        accounted = (
            report.metrics.requests
            + overload["rejected"] + overload["shed"] + overload["expired"]
        )
        assert accounted == len(trace)
        # Every admitted request either completed, was shed or expired.
        assert report.metrics.requests == (
            overload["admitted"] - overload["shed"] - overload["expired"]
        )

    def test_unsaturated_run_is_byte_identical(self):
        trace = steady_trace(rate_rps=500.0, duration_s=0.05, seed=3)
        plain = Server(devices=2, seed=0).simulate(trace, label="steady")
        governed = Server(
            devices=2, seed=0, admission="reject-newest", queue_capacity=1_000_000
        ).simulate(trace, label="steady")
        governed_dict = governed.to_dict()
        overload = governed_dict.pop("overload")
        # Nothing was dropped, so only the admitted ledger distinguishes them.
        assert overload["rejected"] == overload["shed"] == overload["expired"] == 0
        assert overload["admitted"] == len(trace)
        assert governed_dict == plain.to_dict()

    def test_overload_composes_with_fault_schedules(self):
        trace = steady_trace(**SATURATING, kind_mix=KIND_MIX)
        schedule = FaultSchedule.of(FaultSchedule.death(device=0, at_s=0.04))

        def run():
            server = overloaded_server(
                "reject-newest", devices=2, faults=schedule, on_death="drop"
            )
            return server.simulate(trace, label="overload-faults")

        first, second = run(), run()
        assert first.to_dict() == second.to_dict()
        overload = first.metrics.overload
        lost = first.metrics.availability["requests_lost"]
        assert lost > 0
        assert (
            first.metrics.requests
            + overload["rejected"] + overload["shed"] + overload["expired"] + lost
            == len(trace)
        )


# -- async path (satellite 3) -------------------------------------------------------


class TestAsyncTypedDrops:
    def test_rejected_submission_raises_not_hangs(self):
        async def scenario():
            async with Server(
                devices=1,
                admission="reject-newest",
                queue_capacity=1,
                batch_capacity=64,
                max_batch_delay_s=0.2,
            ) as server:
                first = asyncio.ensure_future(server.submit_async("t0", "bootstrap"))
                await asyncio.sleep(0.02)  # let it reach the queue
                with pytest.raises(RequestRejectedError) as excinfo:
                    await server.submit_async("t0", "bootstrap")
                assert excinfo.value.retry_after_s > 0.0
                await first
            report = server.last_async_report
            assert report.metrics.overload["rejected"] == 1

        asyncio.run(scenario())

    def test_expired_submission_raises_deadline_error(self):
        async def scenario():
            async with Server(
                devices=1, admission="reject-newest", queue_capacity=64,
                batch_capacity=64, max_batch_delay_s=0.05,
            ) as server:
                with pytest.raises(DeadlineExceededError):
                    await server.submit_async("t0", "bootstrap", deadline_s=1e-6)

        asyncio.run(scenario())


# -- retry primitives ---------------------------------------------------------------


class TestRetryPrimitives:
    def test_backoff_is_seeded_and_capped(self):
        a, b = RetryPolicy(seed=3), RetryPolicy(seed=3)
        delays = [a.delay_s(attempt) for attempt in range(1, 6)]
        assert delays == [b.delay_s(attempt) for attempt in range(1, 6)]
        assert all(d <= a.max_delay_s * (1 + a.jitter) for d in delays)
        assert RetryPolicy(seed=4).delay_s(1) != a.delay_s(1) or True  # seeds differ

    def test_hint_is_a_floor(self):
        policy = RetryPolicy(base_delay_s=0.01, jitter=0.0)
        assert policy.delay_s(1, hint_s=3.0) == 3.0

    def test_should_retry_respects_max_attempts(self):
        policy = RetryPolicy(max_attempts=2)
        assert policy.should_retry(1) and not policy.should_retry(2)

    def test_breaker_state_machine(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        breaker.check(0.1)  # still closed
        breaker.record_failure(0.2)
        assert breaker.state == "open" and breaker.trips == 1
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check(0.3)
        assert excinfo.value.retry_in_s == pytest.approx(0.9)
        breaker.check(1.3)  # half-open probe admitted
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"

    def test_breaker_abort_probe_releases_the_slot(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        breaker.check(1.5)  # probe admitted
        assert breaker.state == "half-open"
        breaker.abort_probe()  # the probe died without a verdict
        assert breaker.state == "open"
        breaker.check(1.6)  # a fresh probe is admitted immediately
        assert breaker.state == "half-open"

    def test_breaker_expires_a_stale_probe(self):
        # A probe whose caller never reports back (cancelled, or a
        # non-retryable failure path) must not latch the breaker
        # half-open forever.
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1.0)
        breaker.record_failure(0.0)
        breaker.check(1.5)  # probe admitted, then abandoned
        with pytest.raises(CircuitOpenError) as excinfo:
            breaker.check(2.0)  # probe still fresh: fail fast
        assert excinfo.value.retry_in_s == pytest.approx(0.5)
        breaker.check(2.6)  # stale probe expired: a new probe goes through
        assert breaker.state == "half-open"
        breaker.record_success()
        assert breaker.state == "closed"


# -- the wire leg -------------------------------------------------------------------


class TestWirePayloads:
    def test_busy_roundtrip(self):
        busy = protocol.decode_busy(protocol.encode_busy(7, 0.25, "shed"))
        assert busy == protocol.BusyReply(7, 0.25, "shed")
        with pytest.raises(ValueError, match="negative"):
            protocol.encode_busy(1, -0.5, "no")
        with pytest.raises(ValueError, match="truncated"):
            protocol.decode_busy(b"\x00" * 4)

    def test_welcome_credit_window_bounds(self):
        with pytest.raises(ValueError):
            protocol.encode_welcome(1, credit_window=0)
        with pytest.raises(ValueError):
            protocol.encode_welcome(1, credit_window=1 << 16)


class TestNetOverload:
    def test_replay_overload_matches_in_process(self):
        trace = steady_trace(**SATURATING, kind_mix=KIND_MIX)
        options = dict(
            devices=1, admission="shed-oldest", queue_capacity=8,
            tenant_capacity=4, seed=0,
        )
        local = Server(**options).simulate(trace, label="wire")
        wire = asyncio.run(
            replay_trace_async(trace, label="wire", **options)
        )
        wire_metrics = wire.metrics.to_dict()
        # The wire run additionally counts the BUSY frames it sent; the
        # serving-side numbers are otherwise bit-for-bit the in-process run.
        assert wire_metrics["overload"].pop("busy_replies") > 0
        assert wire_metrics == local.metrics.to_dict()
        overload = wire.metrics.overload
        dropped = overload["rejected"] + overload["shed"] + overload["expired"]
        assert dropped > 0 and wire.wire["client_dropped"] == dropped
        assert wire.wire["busy_sent"] >= overload["rejected"] + overload["shed"]

    def test_live_credit_window_is_advertised_and_replenished(self):
        async def scenario():
            async with NetServer(
                mode="live", devices=1, credit_window=2, max_batch_delay_s=0.005
            ) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    assert client.credit_window == 2
                    outcomes = await asyncio.gather(
                        *(client.submit("t0", "bootstrap") for _ in range(6))
                    )
                    assert len(outcomes) == 6
                    assert client.credit_stalls >= 1  # 6 submits through a window of 2
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_window_exhaustion_earns_busy(self):
        async def scenario():
            async with NetServer(
                mode="live", devices=1, credit_window=1,
                batch_capacity=64, max_batch_delay_s=0.2,
            ) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    # Bypass the client's own credit gate to provoke the
                    # server-side window check.
                    first = client.submit_nowait(make_request(1, arrival_s=0.0))
                    second = client.submit_nowait(make_request(2, arrival_s=0.0))
                    with pytest.raises(ServerBusyError) as excinfo:
                        await second
                    assert excinfo.value.retry_after_s > 0.0
                    assert client.busy_replies == 1
                    await first
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_per_request_timeout_raises(self):
        async def scenario():
            async with NetServer(
                mode="live", devices=1, batch_capacity=64, max_batch_delay_s=1.0
            ) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    with pytest.raises(RequestTimeoutError):
                        await client.submit("t0", "bootstrap", timeout_s=0.05)
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_timed_out_submit_holds_its_credit_until_the_late_reply(self):
        async def scenario():
            async with NetServer(
                mode="live", devices=1, credit_window=1,
                batch_capacity=64, max_batch_delay_s=0.3,
            ) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    with pytest.raises(RequestTimeoutError):
                        await client.submit("t0", "bootstrap", timeout_s=0.01)
                    # The server still counts the request in flight, so
                    # the abandoned submit keeps its credit ...
                    assert client._inflight == 1
                    for _ in range(250):
                        if client._inflight == 0:
                            break
                        await asyncio.sleep(0.02)
                    # ... until the late RESULT releases it — windows in
                    # sync again, and no RTT sample for abandoned work.
                    assert client._inflight == 0
                    assert client.rtts_s == []
                    assert client.server_credits == 1
                    outcome = await client.submit("t0", "bootstrap", timeout_s=5.0)
                    assert outcome.completed_s >= 0.0
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_replay_drops_route_to_the_submitting_connection(self):
        # A shed victim may have been submitted by a *different*
        # connection than the offer that triggered the shed; its BUSY
        # must reach the submitter or that client hangs forever.
        async def scenario():
            async with NetServer(
                mode="replay", devices=1, admission="shed-oldest",
                queue_capacity=1, seed=0,
            ) as net:
                host, port = net.address
                first_conn = await AsyncNetClient.connect(host, port)
                second_conn = await AsyncNetClient.connect(host, port)
                try:
                    victim = first_conn.submit_nowait(make_request(1, arrival_s=0.0))
                    await asyncio.sleep(0.05)  # let the server ingest it first
                    survivor = second_conn.submit_nowait(
                        make_request(2, arrival_s=1e-4)
                    )
                    with pytest.raises(ServerBusyError):
                        await asyncio.wait_for(victim, timeout=2.0)
                    await second_conn.drain()
                    outcome = await asyncio.wait_for(survivor, timeout=2.0)
                    assert outcome.request.request_id == 2
                finally:
                    await first_conn.close()
                    await second_conn.close()

        asyncio.run(scenario())

    def test_submit_with_retry_recovers_after_busy(self):
        async def scenario():
            async with NetServer(
                mode="live", devices=1, max_batch_delay_s=0.005
            ) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    real_submit = client.submit
                    failures = ["busy", "busy"]

                    async def flaky(*args, **kwargs):
                        if failures:
                            failures.pop()
                            raise ServerBusyError("try later", retry_after_s=0.001)
                        return await real_submit(*args, **kwargs)

                    client.submit = flaky
                    outcome = await client.submit_with_retry(
                        "t0", "bootstrap",
                        retry=RetryPolicy(base_delay_s=0.001, seed=1),
                    )
                    assert outcome.completed_s >= 0.0
                    assert client.retries == 2
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_breaker_short_circuits_retry_loop(self):
        async def scenario():
            async with NetServer(mode="live", devices=1) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    async def always_busy(*args, **kwargs):
                        raise ServerBusyError("no", retry_after_s=0.0)

                    client.submit = always_busy
                    breaker = CircuitBreaker(failure_threshold=2, reset_timeout_s=60.0)
                    with pytest.raises(CircuitOpenError):
                        await client.submit_with_retry(
                            "t0", "bootstrap",
                            retry=RetryPolicy(base_delay_s=0.001, max_attempts=5, seed=1),
                            breaker=breaker,
                        )
                    assert breaker.trips == 1
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_retry_loop_releases_the_probe_on_nonretryable_failure(self):
        # A half-open probe that dies of an error the retry loop does not
        # count (connection loss, typed ERROR) must release its slot, or
        # every later check() raises CircuitOpenError forever.
        async def scenario():
            async with NetServer(mode="live", devices=1) as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                try:
                    async def wire_died(*args, **kwargs):
                        raise ConnectionError("wire died")

                    client.submit = wire_died
                    breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=0.0)
                    breaker.record_failure(0.0)  # open; cool-down is instant
                    for _ in range(3):
                        with pytest.raises(ConnectionError):
                            await client.submit_with_retry(
                                "t0", "bootstrap", breaker=breaker
                            )
                        assert breaker.state != "half-open"  # slot released
                finally:
                    await client.close()

        asyncio.run(scenario())

    def test_closed_loop_with_retry_counts_overload(self):
        trace = steady_trace(rate_rps=300.0, duration_s=0.05, seed=5)
        report = asyncio.run(
            closed_loop_async(
                trace,
                connections=2,
                devices=1,
                credit_window=4,
                retry=RetryPolicy(base_delay_s=0.001, seed=2),
                timeout_s=5.0,
                max_batch_delay_s=0.002,
            )
        )
        assert report.metrics.requests + report.wire.get(
            "client_abandoned", 0
        ) == len(trace)

    def test_sync_client_sees_busy_and_welcome(self):
        # NetClient is blocking, so drive the server in a thread-backed loop.
        import threading

        from repro.net import NetClient

        results: dict[str, object] = {}
        ready, done = threading.Event(), threading.Event()

        async def serve():
            async with NetServer(
                mode="live", devices=1, credit_window=3, max_batch_delay_s=0.005
            ) as net:
                results["address"] = net.address
                ready.set()
                await asyncio.get_running_loop().run_in_executor(None, done.wait)

        thread = threading.Thread(target=lambda: asyncio.run(serve()), daemon=True)
        thread.start()
        assert ready.wait(5.0)
        try:
            host, port = results["address"]
            with NetClient(host, port) as client:
                assert client.credit_window == 3
                outcome = client.submit("t0", "bootstrap", timeout_s=5.0)
                assert outcome.completed_s >= 0.0
        finally:
            done.set()
            thread.join(5.0)

    def test_sync_expect_discards_stale_replies(self):
        # A timed-out submit's late RESULT/BUSY stays in the stream; the
        # next call must discard it instead of returning it as its own
        # outcome (the stream would desynchronize forever otherwise).
        from repro.net import codec
        from repro.net.client import NetClient
        from repro.net.protocol import Frame, MessageType

        client = NetClient.__new__(NetClient)
        client._abandoned = {1, 2}
        client._frames = [
            Frame(1, MessageType.RESULT, codec.encode_result(1, 0, 0, 0.0, 0.0, 0.0)),
            Frame(1, MessageType.BUSY, protocol.encode_busy(2, 0.1, "late shed")),
            Frame(1, MessageType.RESULT, codec.encode_result(3, 0, 0, 0.0, 0.0, 0.1)),
        ]
        frame = client._expect(MessageType.RESULT, request_id=3)
        assert codec.decode_result(frame.payload).request_id == 3
        assert client._abandoned == set()

    def test_sync_timeout_does_not_desynchronize_the_stream(self):
        import threading

        from repro.net import NetClient

        results: dict[str, object] = {}
        ready, done = threading.Event(), threading.Event()

        async def serve():
            async with NetServer(
                mode="live", devices=1, batch_capacity=64, max_batch_delay_s=0.15
            ) as net:
                results["address"] = net.address
                ready.set()
                await asyncio.get_running_loop().run_in_executor(None, done.wait)

        thread = threading.Thread(target=lambda: asyncio.run(serve()), daemon=True)
        thread.start()
        assert ready.wait(5.0)
        try:
            host, port = results["address"]
            with NetClient(host, port) as client:
                with pytest.raises(RequestTimeoutError):
                    client.submit("t0", "bootstrap", timeout_s=0.01)
                # The second submit skips request 1's late RESULT and
                # returns its own, not the stale frame.
                outcome = client.submit("t0", "bootstrap", timeout_s=5.0)
                assert outcome.request.request_id == 2
                assert client._abandoned == set()  # the stale reply was eaten
        finally:
            done.set()
            thread.join(5.0)


# -- deadline errors over the wire --------------------------------------------------


def test_live_deadline_exceeded_is_a_typed_error():
    async def scenario():
        async with NetServer(
            mode="live", devices=1, admission="reject-newest", queue_capacity=64,
            batch_capacity=64, max_batch_delay_s=0.05,
        ) as net:
            host, port = net.address
            client = await AsyncNetClient.connect(host, port)
            try:
                with pytest.raises(NetError, match="DEADLINE_EXCEEDED"):
                    await client.submit("t0", "bootstrap", deadline_s=1e-6)
            finally:
                await client.close()

    asyncio.run(scenario())
