"""Request-lifecycle tracing: where did request X spend its time?

A :class:`Span` is one request's full story through the serving stack —
enqueue, batch admission, device execution, wire reply — with batch and
device attribution at every step.  The :class:`Tracer` assembles spans
from *observer hooks* the serving components call as a request moves:

* :meth:`Tracer.on_enqueue` — :class:`~repro.serve.queue.RequestQueue`
  notifies on every ``push`` (the span opens at the request's arrival);
* :meth:`Tracer.on_batch` — the
  :class:`~repro.serve.batcher.AdaptiveBatcher` notifies when a flush
  admits the request into a batch (admission time, batch id, flush
  reason);
* :meth:`Tracer.on_dispatch` — the
  :class:`~repro.serve.cluster.StrixCluster` notifies with the layout's
  :class:`~repro.sched.layouts.Dispatch` (execution window, device set,
  per-stage detail under the pipeline layout);
* :meth:`Tracer.on_reply` — the :class:`~repro.net.server.NetServer`
  notifies when the ``RESULT`` frame goes out.

The tracer owns **no clock**: every timestamp is read off the request,
batch or dispatch object that carries it, so a replayed trace yields
simulated-time spans (bit-for-bit reproducible) while the live asyncio
path yields wall-clock spans — with the same code.  Tracing is pure
observation; enabling it never changes batching, placement or the
resulting :class:`~repro.serve.server.ServeReport` (the test suite
enforces byte-identity with tracing on versus off).

Install one via :meth:`repro.serve.Server.enable_tracing`; export spans
with :mod:`repro.obs.export` (JSONL, Chrome ``trace_event``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.sched.layouts import Dispatch
    from repro.serve.batcher import Batch
    from repro.serve.request import Request


@dataclass(frozen=True)
class StageSpan:
    """One pipeline stage's slice of a request's execution window."""

    stage: int
    device: int
    start_s: float
    end_s: float
    pbs: int

    def to_dict(self) -> dict:
        """JSON-friendly representation."""
        return {
            "stage": self.stage,
            "device": self.device,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "pbs": self.pbs,
        }


@dataclass(frozen=True)
class Span:
    """One request's lifecycle through queue → batcher → device → reply.

    Timestamps share one clock — the serving clock of the run that
    produced them (simulated seconds in replay, wall seconds since the
    server epoch live).  Fields after ``enqueue_s`` are ``None`` until
    the corresponding lifecycle step has happened; a drained run leaves
    every span with at least enqueue/admit/execute/complete filled.
    """

    request_id: int
    tenant: str
    kind: str
    items: int
    pbs: int
    #: Arrival on the serving clock (queue push).
    enqueue_s: float
    #: Batch admission time (the flush that took the request).
    admit_s: float | None = None
    batch_id: int | None = None
    flush_reason: str | None = None
    #: Device execution window (the dispatch start/end of the batch).
    execute_s: float | None = None
    complete_s: float | None = None
    #: When the RESULT frame left the wire (``None`` off the net path).
    reply_s: float | None = None
    #: Completing device, and every device the batch touched.
    device: int | None = None
    devices: tuple[int, ...] = ()
    #: Per-stage execution detail under the pipeline layout.
    stages: tuple[StageSpan, ...] = ()
    #: Fault-injection outcome: the batch was replayed after a device
    #: death (``retried``), or dropped without completing (``lost``).
    retried: bool = False
    lost: bool = False

    @property
    def queue_s(self) -> float | None:
        """Seconds between enqueue and batch admission."""
        if self.admit_s is None:
            return None
        return self.admit_s - self.enqueue_s

    @property
    def service_s(self) -> float | None:
        """Seconds the batch occupied its device(s)."""
        if self.execute_s is None or self.complete_s is None:
            return None
        return self.complete_s - self.execute_s

    @property
    def latency_s(self) -> float | None:
        """End-to-end enqueue-to-completion seconds."""
        if self.complete_s is None:
            return None
        return self.complete_s - self.enqueue_s

    def to_dict(self) -> dict:
        """JSON-friendly representation (what the JSONL exporter writes)."""
        return {
            "request_id": self.request_id,
            "tenant": self.tenant,
            "kind": self.kind,
            "items": self.items,
            "pbs": self.pbs,
            "enqueue_s": self.enqueue_s,
            "admit_s": self.admit_s,
            "batch_id": self.batch_id,
            "flush_reason": self.flush_reason,
            "execute_s": self.execute_s,
            "complete_s": self.complete_s,
            "reply_s": self.reply_s,
            "device": self.device,
            "devices": list(self.devices),
            "stages": [stage.to_dict() for stage in self.stages],
            "retried": self.retried,
            "lost": self.lost,
        }


class Tracer:
    """Assembles one :class:`Span` per request from the lifecycle hooks.

    Spans are keyed by request id and each hook *overwrites* its own
    fields, so replayed paths that push the same request through a queue
    twice (``simulate`` re-queues sync submissions) stay idempotent.
    """

    def __init__(self) -> None:
        self._spans: dict[int, Span] = {}

    def __len__(self) -> int:
        return len(self._spans)

    # -- lifecycle hooks ----------------------------------------------------------

    def _base(self, request: "Request") -> Span:
        existing = self._spans.get(request.request_id)
        if existing is not None:
            return existing
        return Span(
            request_id=request.request_id,
            tenant=request.tenant,
            kind=request.kind.value,
            items=request.items,
            pbs=request.total_pbs,
            enqueue_s=request.arrival_s,
        )

    def on_enqueue(self, request: "Request") -> None:
        """The queue accepted ``request`` (opens its span)."""
        self._spans[request.request_id] = self._base(request)

    def on_batch(self, batch: "Batch") -> None:
        """A flush admitted every request of ``batch``."""
        for request in batch.requests:
            self._spans[request.request_id] = replace(
                self._base(request),
                admit_s=batch.created_s,
                batch_id=batch.batch_id,
                flush_reason=batch.flush_reason,
            )

    def on_dispatch(self, batch: "Batch", dispatch: "Dispatch") -> None:
        """The cluster executed ``batch`` per the layout's ``dispatch``."""
        stages = tuple(
            StageSpan(
                stage=index,
                device=stage.device,
                start_s=stage.start_s,
                end_s=stage.end_s,
                pbs=stage.pbs,
            )
            for index, stage in enumerate(dispatch.stages)
        )
        for request in batch.requests:
            self._spans[request.request_id] = replace(
                self._base(request),
                execute_s=dispatch.start_s,
                complete_s=dispatch.end_s,
                device=dispatch.device,
                devices=tuple(dispatch.devices),
                stages=stages,
                retried=dispatch.retried,
                lost=dispatch.lost,
            )

    def on_reply(self, request_id: int, t_s: float) -> None:
        """The wire sent ``request_id``'s RESULT frame at ``t_s``."""
        span = self._spans.get(request_id)
        if span is not None:
            self._spans[request_id] = replace(span, reply_s=t_s)

    # -- reading ------------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Every recorded span, ordered by (enqueue time, request id)."""
        return sorted(
            self._spans.values(), key=lambda span: (span.enqueue_s, span.request_id)
        )

    def get(self, request_id: int) -> Span | None:
        """One request's span, or ``None`` if the tracer never saw it."""
        return self._spans.get(request_id)

    def clear(self) -> None:
        """Drop every recorded span (e.g. between repeated simulations)."""
        self._spans.clear()
