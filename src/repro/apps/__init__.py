"""Application workloads.

The workloads the paper motivates and evaluates:

* :mod:`repro.apps.deep_nn` — the Zama Deep-NN models (NN-20 / NN-50 /
  NN-100) used in the Fig. 7 application benchmark, both as computation
  graphs for the simulator and as a small functional inference path running
  on the TFHE substrate.
* :mod:`repro.apps.boolean_circuits` — gate-level circuits (adders,
  comparators, multiplexer trees) built from the homomorphic gate set.
* :mod:`repro.apps.workloads` — generic workload generators (PBS batches,
  LUT pipelines) used by the microbenchmarks and tests.
* :mod:`repro.apps.traffic` — serving-traffic request traces (steady /
  bursty / heavy-tail arrival patterns) for :mod:`repro.serve`.
"""

from repro.apps.deep_nn import DeepNNModel, ZAMA_DEEP_NN_MODELS, build_deep_nn_graph
from repro.apps.boolean_circuits import RippleCarryAdder, Comparator, boolean_circuit_graph
from repro.apps.workloads import pbs_batch_graph, lut_pipeline_graph, gate_workload_graph

#: Names re-exported lazily from :mod:`repro.apps.traffic`.  The traffic
#: generators build :class:`repro.serve.request.Request` objects, and the
#: serve layer builds on the runtime, which imports this package while it is
#: itself still initializing — so the import has to wait until first use.
_TRAFFIC_EXPORTS = frozenset(
    {"TRAFFIC_PATTERNS", "steady_trace", "bursty_trace", "heavy_tail_trace"}
)


def __getattr__(name: str):
    if name in _TRAFFIC_EXPORTS:
        from repro.apps import traffic

        return getattr(traffic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DeepNNModel",
    "ZAMA_DEEP_NN_MODELS",
    "build_deep_nn_graph",
    "RippleCarryAdder",
    "Comparator",
    "boolean_circuit_graph",
    "pbs_batch_graph",
    "lut_pipeline_graph",
    "gate_workload_graph",
    "TRAFFIC_PATTERNS",
    "steady_trace",
    "bursty_trace",
    "heavy_tail_trace",
]
