"""Event primitives for the discrete-event engine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable


#: Monotonic tie-breaker so events scheduled for the same time preserve
#: insertion order inside the heap.
_EVENT_COUNTER = itertools.count()


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, sequence)`` so the engine pops
    them chronologically and deterministically.
    """

    time: float
    priority: int
    sequence: int = field(compare=True)
    action: Callable[[], Any] = field(compare=False)
    label: str = field(compare=False, default="")

    @classmethod
    def at(
        cls,
        time: float,
        action: Callable[[], Any],
        priority: int = 0,
        label: str = "",
    ) -> "Event":
        """Create an event at an absolute time."""
        return cls(
            time=time,
            priority=priority,
            sequence=next(_EVENT_COUNTER),
            action=action,
            label=label,
        )


@dataclass
class TimelineEntry:
    """One completed activity recorded on the simulation timeline."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Activity duration."""
        return self.end - self.start
