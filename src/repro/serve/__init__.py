"""Multi-tenant FHE serving layer over a sharded Strix cluster.

The paper's throughput comes from streaming device×core epochs through the
accelerator; production traffic arrives as many small independent requests
from many tenants.  This package is the layer in between::

    tenants --> RequestQueue --> AdaptiveBatcher --> StrixCluster
                 (FIFO,           (flush on full      (N devices, sharding
                  per-tenant       or deadline)        policy, aggregation)
                  accounting)

* :class:`Server` — the facade: per-tenant key/session management, a
  synchronous trace-replay path (:meth:`Server.simulate`) and an
  ``asyncio`` submission path (:meth:`Server.submit_async`);
* :class:`StrixCluster` — N simulated Strix devices with round-robin /
  least-loaded / affinity sharding, aggregating per-device results into one
  cluster-level :class:`~repro.runtime.result.RunResult`;
* :class:`AdaptiveBatcher` / :class:`RequestQueue` — epoch-sized coalescing
  with bounded tail latency;
* :mod:`repro.serve.metrics` — p50/p99 latency, throughput, queue depth and
  device utilization summaries;
* the ``"strix-cluster"`` runtime backend, so ``run(workload,
  backend="strix-cluster", devices=4)`` works from the PR 1 facade.

Quickstart::

    from repro.serve import Server
    from repro.apps.traffic import steady_trace

    server = Server(devices=4, policy="least-loaded")
    report = server.simulate(
        steady_trace(rate_rps=2000, duration_s=0.5, seed=7), label="steady"
    )
    print(report.render())                 # p50/p99, PBS/s, device utilization
"""

from repro.serve.backend import StrixClusterBackend
from repro.serve.batcher import AdaptiveBatcher, Batch
from repro.serve.cluster import (
    CLUSTER_BACKEND_NAME,
    DeviceShardResult,
    StrixCluster,
    StrixDevice,
)
from repro.serve.metrics import (
    LatencySummary,
    MetricsCollector,
    ServeMetrics,
    percentile,
)
from repro.serve.queue import RequestQueue
from repro.serve.request import Request, RequestKind, RequestOutcome, pbs_per_item
from repro.serve.server import Server, ServeConfig, ServeReport, TenantState
from repro.serve.sharding import (
    AffinityPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    ShardingPolicy,
    get_policy,
    list_policies,
)

__all__ = [
    "AdaptiveBatcher",
    "AffinityPolicy",
    "Batch",
    "CLUSTER_BACKEND_NAME",
    "DeviceShardResult",
    "LatencySummary",
    "LeastLoadedPolicy",
    "MetricsCollector",
    "Request",
    "RequestKind",
    "RequestOutcome",
    "RequestQueue",
    "RoundRobinPolicy",
    "ServeConfig",
    "ServeMetrics",
    "ServeReport",
    "Server",
    "ShardingPolicy",
    "StrixCluster",
    "StrixClusterBackend",
    "StrixDevice",
    "TenantState",
    "get_policy",
    "list_policies",
    "pbs_per_item",
    "percentile",
]
