"""Blind-rotation fragment accounting (Equations 1 and 2 of the paper).

When the number of ciphertexts that need bootstrapping exceeds the batch
size of one blind rotation, the blind rotation must run multiple times —
the *fragments* whose count drives total execution time:

.. math::

    \\#\\text{fragments} = \\lceil \\#\\text{ciphertexts} / \\text{batch size} \\rceil - 1

    \\text{total time} = (\\#\\text{fragments} + 1) \\times \\text{BR time per batch}

Increasing the batch size (the paper's two-level batching) is what shrinks
the fragment count; this module provides the shared arithmetic used by the
GPU baseline model, the fragmentation analysis (Fig. 2) and the Strix epoch
scheduler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def blind_rotation_fragments(ciphertexts: int, batch_size: int) -> int:
    """Number of *extra* blind-rotation passes beyond the first (Eq. 2)."""
    if ciphertexts < 0:
        raise ValueError("ciphertext count cannot be negative")
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    if ciphertexts == 0:
        return 0
    return math.ceil(ciphertexts / batch_size) - 1


def fragmented_execution_time(ciphertexts: int, batch_size: int, time_per_fragment: float) -> float:
    """Total blind-rotation time under fragmentation (Eq. 1)."""
    if ciphertexts == 0:
        return 0.0
    return (blind_rotation_fragments(ciphertexts, batch_size) + 1) * time_per_fragment


@dataclass(frozen=True)
class FragmentPlan:
    """How a set of ciphertexts decomposes into blind-rotation fragments."""

    ciphertexts: int
    batch_size: int
    fragment_sizes: tuple[int, ...]

    @property
    def num_passes(self) -> int:
        """Number of blind-rotation passes (fragments + 1 in the paper's terms)."""
        return len(self.fragment_sizes)

    @property
    def fragments(self) -> int:
        """The paper's fragment count (extra passes beyond the first)."""
        return max(self.num_passes - 1, 0)

    @property
    def occupancy(self) -> float:
        """Average batch occupancy across the passes (1.0 = fully packed)."""
        if not self.fragment_sizes:
            return 0.0
        return self.ciphertexts / (self.num_passes * self.batch_size)


def plan_fragments(ciphertexts: int, batch_size: int) -> FragmentPlan:
    """Split ``ciphertexts`` into blind-rotation passes of at most ``batch_size``."""
    if batch_size < 1:
        raise ValueError("batch size must be at least 1")
    sizes = []
    remaining = ciphertexts
    while remaining > 0:
        take = min(remaining, batch_size)
        sizes.append(take)
        remaining -= take
    return FragmentPlan(ciphertexts=ciphertexts, batch_size=batch_size, fragment_sizes=tuple(sizes))
