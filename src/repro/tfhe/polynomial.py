"""Negacyclic torus polynomial arithmetic.

GLWE ciphertexts and GGSW rows are vectors of polynomials in the ring
``Z_q[X] / (X^N + 1)``.  This module provides the operations blind rotation
needs on such polynomials: addition/subtraction, negacyclic monomial
rotation (multiplication by ``X^r``), and multiplication by an integer
polynomial with small coefficients (the decomposed digits), executed through
the FFT transforms of :mod:`repro.fft`.
"""

from __future__ import annotations

import numpy as np

from repro.fft.folding import FoldedNegacyclicTransform
from repro.fft.registry import get_folded_transform
from repro.tfhe import torus


def get_transform(degree: int) -> FoldedNegacyclicTransform:
    """Return (and cache) the folded negacyclic transform for ``degree``.

    Delegates to the shared per-degree registry (:mod:`repro.fft.registry`),
    so blind rotation, the vectorized batch kernels and the arch-tier FFT
    unit all reuse one set of twiddle tables per degree — and the registry's
    hit/miss counters see every lookup.
    """
    return get_folded_transform(degree)


def zero(degree: int) -> np.ndarray:
    """The zero polynomial of the given degree."""
    return np.zeros(degree, dtype=np.int64)


def add(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Coefficient-wise addition modulo ``q``."""
    return torus.reduce(np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64), q)


def sub(a: np.ndarray, b: np.ndarray, q: int) -> np.ndarray:
    """Coefficient-wise subtraction modulo ``q``."""
    return torus.reduce(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64), q)


def negate(a: np.ndarray, q: int) -> np.ndarray:
    """Coefficient-wise negation modulo ``q``."""
    return torus.reduce(-np.asarray(a, dtype=np.int64), q)


def monomial_multiply(a: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Multiply a polynomial by ``X^exponent`` modulo ``X^N + 1``.

    ``exponent`` may be any integer (negative exponents rotate the other
    way); the result respects the negacyclic sign rule ``X^N = -1``.
    """
    a = np.asarray(a, dtype=np.int64)
    n = a.shape[-1]
    exponent = exponent % (2 * n)
    if exponent == 0:
        return torus.reduce(a.copy(), q)
    negate_all = exponent >= n
    shift = exponent - n if negate_all else exponent
    rotated = np.empty_like(a)
    if shift:
        rotated[..., shift:] = a[..., : n - shift]
        rotated[..., :shift] = -a[..., n - shift :]
    else:
        rotated[...] = a
    if negate_all:
        rotated = -rotated
    return torus.reduce(rotated, q)


def rotate_and_subtract(a: np.ndarray, exponent: int, q: int) -> np.ndarray:
    """Compute ``X^exponent * a - a`` modulo ``(X^N + 1, q)``.

    This is the "rotate and subtract" step of each blind rotation iteration
    (Algorithm 1, line 6), implemented by the Rotator unit in Strix.
    """
    return sub(monomial_multiply(a, exponent, q), a, q)


def integer_multiply(torus_poly: np.ndarray, integer_poly: np.ndarray, q: int) -> np.ndarray:
    """Multiply a torus polynomial by a small-coefficient integer polynomial.

    The torus operand is centered to ``[-q/2, q/2)`` before the transform to
    keep the floating-point products well inside a double's exact range, then
    the product is reduced back modulo ``q``.
    """
    torus_poly = np.asarray(torus_poly, dtype=np.int64)
    transform = get_transform(torus_poly.shape[-1])
    centered = torus.to_signed(torus_poly, q)
    product = transform.multiply(centered, np.asarray(integer_poly, dtype=np.int64))
    return torus.reduce(product, q)


def constant_term(a: np.ndarray) -> int:
    """Return the degree-zero coefficient of a polynomial."""
    return int(np.asarray(a)[..., 0])
