"""Strix hardware configuration.

The paper exposes four parallelism levels (Section IV-A):

* **TvLP** — test-vector level parallelism: the number of Homomorphic
  Streaming Cores, each processing a different ciphertext.
* **CLP** — coefficient level parallelism: the number of lanes of the FFT
  unit (most other units run ``2*CLP`` lanes to match the folding scheme).
* **PLP** — polynomial level parallelism: replication of the FFT/VMA units.
* **CoLP** — column level parallelism: replication of the rotator,
  decomposer, IFFT and accumulator units.

The shipped design point is TvLP=8, CLP=4, PLP=2, CoLP=2 at 1.2 GHz with a
21 MB global scratchpad, 0.625 MB local scratchpads and one 300 GB/s HBM2e
stack.  :data:`STRIX_DEFAULT` captures it; :data:`STRIX_UNFOLDED` is the
ablation variant of Table VI that disables the FFT folding scheme.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class StrixConfig:
    """Architectural configuration of a Strix instance.

    Attributes
    ----------
    tvlp:
        Number of HSCs (test-vector level parallelism).
    clp:
        FFT-unit lanes (coefficient level parallelism).
    plp:
        FFT/VMA replication (polynomial level parallelism).
    colp:
        Rotator/decomposer/IFFT/accumulator replication (column level
        parallelism).
    clock_ghz:
        Core clock in GHz.
    hbm_bandwidth_gbps:
        External memory bandwidth in GB/s (one HBM2e stack by default).
    hbm_capacity_gb:
        External memory *capacity* in GB (one 16 GB HBM2e stack by
        default).  The serving tier derives per-device key-memory budgets
        from it — every resident tenant pins one BSK + KSK set in HBM, so
        capacity, not bandwidth, bounds how many tenants a device can hold
        (see :mod:`repro.arch.key_cache`).
    global_scratchpad_mb / local_scratchpad_mb:
        On-chip memory capacities.
    local_scratchpad_pbs_fraction:
        Fraction of each local scratchpad reserved for intermediate test
        vectors of the PBS cluster (the rest belongs to the keyswitch
        cluster).
    fft_folding:
        Whether the FFT unit uses the folding scheme (Section V-A).  When
        enabled an ``N``-point transform runs on an ``N/2``-point unit and
        the other units run ``2*clp`` lanes.
    max_fft_points:
        Largest transform the physical FFT unit supports (the paper's unit
        handles 16,384-point polynomials, 8,192 after folding).
    ks_clp / ks_colp:
        Lanes and column replication of the keyswitch cluster.
    bsk_channels / ksk_channels / ciphertext_channels:
        HBM channel allocation (out of 16 total for one stack).
    """

    tvlp: int = 8
    clp: int = 4
    plp: int = 2
    colp: int = 2
    clock_ghz: float = 1.2
    hbm_bandwidth_gbps: float = 300.0
    hbm_capacity_gb: float = 16.0
    global_scratchpad_mb: float = 21.0
    local_scratchpad_mb: float = 0.625
    local_scratchpad_pbs_fraction: float = 0.8
    fft_folding: bool = True
    max_fft_points: int = 16384
    ks_clp: int = 8
    ks_colp: int = 8
    bsk_channels: int = 8
    ksk_channels: int = 4
    ciphertext_channels: int = 4

    def __post_init__(self) -> None:
        if self.tvlp < 1 or self.clp < 1 or self.plp < 1 or self.colp < 1:
            raise ValueError("all parallelism levels must be at least 1")
        if self.clock_ghz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.hbm_bandwidth_gbps <= 0:
            raise ValueError("HBM bandwidth must be positive")
        if self.hbm_capacity_gb <= 0:
            raise ValueError("HBM capacity must be positive")
        total_channels = (
            self.bsk_channels + self.ksk_channels + self.ciphertext_channels
        )
        if total_channels != 16:
            raise ValueError(
                f"HBM channel allocation must total 16, got {total_channels}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def clock_hz(self) -> float:
        """Clock frequency in Hz."""
        return self.clock_ghz * 1e9

    @property
    def cycle_time_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1.0 / self.clock_ghz

    @property
    def effective_lanes(self) -> int:
        """Coefficient lanes seen by the non-FFT units.

        With folding the rotator/decomposer/accumulator run ``2*clp`` lanes
        so a virtual CLP of ``2*clp`` is sustained; without folding every
        unit runs ``clp`` lanes.
        """
        return 2 * self.clp if self.fft_folding else self.clp

    @property
    def fft_points(self) -> int:
        """Physical size of the FFT unit for the largest supported degree."""
        return self.max_fft_points // 2 if self.fft_folding else self.max_fft_points

    @property
    def chip_coefficient_throughput(self) -> int:
        """Coefficients processed per cycle chip-wide by the wide units."""
        return self.effective_lanes * self.colp * self.tvlp

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to seconds."""
        return cycles / self.clock_hz

    def cycles_to_ms(self, cycles: float) -> float:
        """Convert a cycle count to milliseconds."""
        return self.cycles_to_seconds(cycles) * 1e3

    def with_parallelism(self, *, tvlp: int | None = None, clp: int | None = None) -> "StrixConfig":
        """Return a copy with a different TvLP / CLP operating point.

        Used by the Table VII trade-off sweep, which keeps the product
        ``tvlp * clp`` constant.
        """
        return replace(
            self,
            tvlp=self.tvlp if tvlp is None else tvlp,
            clp=self.clp if clp is None else clp,
        )

    def without_folding(self) -> "StrixConfig":
        """Return the non-folded ablation variant (Table VI)."""
        return replace(self, fft_folding=False)


#: The design point evaluated throughout the paper.
STRIX_DEFAULT = StrixConfig()

#: Ablation variant without the FFT folding optimization (Table VI).
STRIX_UNFOLDED = StrixConfig(fft_folding=False)


@dataclass(frozen=True)
class StrixClusterConfig:
    """Geometry of a multi-device Strix deployment.

    The paper evaluates a single chip; a serving deployment shards work
    across several identical chips behind one host.  The cluster adds two
    cost knobs on top of the per-device model:

    Attributes
    ----------
    devices:
        Number of Strix chips in the cluster.
    device:
        Architectural configuration shared by every chip.
    interconnect_gbps:
        Host-to-device link bandwidth in **gigabytes** per second, matching
        the ``hbm_bandwidth_gbps`` convention of :class:`StrixConfig` (the
        64.0 default is a PCIe 5.0 x16-class link).  Used to ship ciphertext
        shards on the serving path.
    dispatch_overhead_s:
        Fixed host-side cost per sharded dispatch (scatter + gather).
        Defaults to zero so a one-device cluster reproduces the
        single-device simulator results bit-for-bit.
    key_budget_bytes:
        Per-device HBM budget for resident tenant key sets (BSK + KSK).
        ``None`` (the default) models unbounded key memory — every device
        keeps every tenant's keys forever, the pre-eviction behaviour that
        keeps historical serving numbers bit-for-bit.  A finite budget makes
        :class:`repro.arch.key_cache.KeyResidencyManager` evict under the
        configured policy and charge BSK/KSK re-shipping on re-use; derive a
        hardware-honest value with
        :func:`repro.arch.key_cache.hbm_key_budget_bytes`.
    key_policy:
        Eviction-policy name for the per-device key caches (``"lru"`` /
        ``"lfu"`` / ``"pinned"``).  Only consulted when ``key_budget_bytes``
        is finite.
    """

    devices: int = 4
    device: StrixConfig = STRIX_DEFAULT
    interconnect_gbps: float = 64.0
    dispatch_overhead_s: float = 0.0
    key_budget_bytes: float | None = None
    key_policy: str = "lru"

    def __post_init__(self) -> None:
        if self.devices < 1:
            raise ValueError("a cluster needs at least one device")
        if self.interconnect_gbps <= 0:
            raise ValueError("interconnect bandwidth must be positive")
        if self.dispatch_overhead_s < 0:
            raise ValueError("dispatch overhead cannot be negative")
        if self.key_budget_bytes is not None and self.key_budget_bytes <= 0:
            raise ValueError("key-memory budget must be positive (or None)")

    @property
    def total_hscs(self) -> int:
        """Homomorphic streaming cores across the whole cluster."""
        return self.devices * self.device.tvlp

    def with_devices(self, devices: int) -> "StrixClusterConfig":
        """Return a copy with a different device count."""
        return replace(self, devices=devices)

    def with_key_budget(
        self, key_budget_bytes: float | None, key_policy: str | None = None
    ) -> "StrixClusterConfig":
        """Return a copy with a different key-memory budget (and policy)."""
        return replace(
            self,
            key_budget_bytes=key_budget_bytes,
            key_policy=key_policy if key_policy is not None else self.key_policy,
        )


#: Default four-device serving cluster built from the paper's design point.
CLUSTER_DEFAULT = StrixClusterConfig()
