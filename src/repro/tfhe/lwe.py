"""LWE ciphertexts.

An LWE ciphertext is a vector ``(a_1, ..., a_n, b)`` of torus scalars with
``b = <a, s> + m + e`` for a binary secret ``s``, message ``m`` and noise
``e``.  It is the primary carrier of encrypted messages in TFHE (Section
II-D of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus


@dataclass
class LweCiphertext:
    """An LWE ciphertext ``(a, b)`` over the discretized torus.

    Attributes
    ----------
    mask:
        The ``a`` vector (length equals the LWE dimension of this ciphertext,
        which is ``n`` for freshly encrypted ciphertexts and ``k*N`` for
        ciphertexts extracted from a GLWE).
    body:
        The scalar ``b``.
    params:
        The parameter set the ciphertext was produced under.
    """

    mask: np.ndarray
    body: int
    params: TFHEParameters

    def __post_init__(self) -> None:
        self.mask = torus.reduce(np.asarray(self.mask, dtype=np.int64), self.params.q)
        self.body = int(self.body) % self.params.q

    @property
    def dimension(self) -> int:
        """LWE dimension (length of the mask)."""
        return int(self.mask.shape[0])

    # -- constructors ---------------------------------------------------------

    @classmethod
    def trivial(cls, value: int, dimension: int, params: TFHEParameters) -> "LweCiphertext":
        """Noiseless, keyless encryption of ``value`` (mask of all zeros)."""
        return cls(np.zeros(dimension, dtype=np.int64), value, params)

    @classmethod
    def encrypt(
        cls,
        value: int,
        key: "np.ndarray",
        params: TFHEParameters,
        rng: np.random.Generator,
        noise_std: float | None = None,
    ) -> "LweCiphertext":
        """Encrypt a torus value under a binary secret key vector."""
        key = np.asarray(key, dtype=np.int64)
        std = params.lwe_noise_std if noise_std is None else noise_std
        mask = torus.uniform(key.shape[0], params.q, rng)
        noise = int(torus.gaussian_noise((), std, params.q, rng))
        body = (int(np.dot(mask, key)) + int(value) + noise) % params.q
        return cls(mask, body, params)

    # -- decryption ------------------------------------------------------------

    def phase(self, key: np.ndarray) -> int:
        """Return the noisy phase ``b - <a, s>`` (message plus noise)."""
        key = np.asarray(key, dtype=np.int64)
        if key.shape[0] != self.dimension:
            raise ValueError(
                f"key dimension {key.shape[0]} does not match ciphertext "
                f"dimension {self.dimension}"
            )
        return (self.body - int(np.dot(self.mask, key))) % self.params.q

    # -- homomorphic linear operations ------------------------------------------

    def __add__(self, other: "LweCiphertext") -> "LweCiphertext":
        self._check_compatible(other)
        return LweCiphertext(self.mask + other.mask, self.body + other.body, self.params)

    def __sub__(self, other: "LweCiphertext") -> "LweCiphertext":
        self._check_compatible(other)
        return LweCiphertext(self.mask - other.mask, self.body - other.body, self.params)

    def __neg__(self) -> "LweCiphertext":
        return LweCiphertext(-self.mask, -self.body, self.params)

    def scalar_multiply(self, scalar: int) -> "LweCiphertext":
        """Multiply the encrypted message by a small plaintext integer."""
        return LweCiphertext(self.mask * int(scalar), self.body * int(scalar), self.params)

    def add_plaintext(self, value: int) -> "LweCiphertext":
        """Add a plaintext torus value to the encrypted message."""
        return LweCiphertext(self.mask.copy(), self.body + int(value), self.params)

    def copy(self) -> "LweCiphertext":
        """Deep copy of the ciphertext."""
        return LweCiphertext(self.mask.copy(), self.body, self.params)

    def _check_compatible(self, other: "LweCiphertext") -> None:
        if self.dimension != other.dimension:
            raise ValueError(
                "cannot combine LWE ciphertexts of different dimensions: "
                f"{self.dimension} vs {other.dimension}"
            )
        if self.params.q != other.params.q:
            raise ValueError("cannot combine ciphertexts with different moduli")
