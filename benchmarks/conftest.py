"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and writes the
rendered result under ``benchmarks/results/`` so the artifacts survive the
run (``pytest benchmarks/ --benchmark-only`` prints timing; the text files
hold the reproduced numbers referenced by EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where reproduced tables/figures are written."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Callable that persists a rendered experiment and echoes it to stdout."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save
