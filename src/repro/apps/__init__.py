"""Application workloads.

The workloads the paper motivates and evaluates:

* :mod:`repro.apps.deep_nn` — the Zama Deep-NN models (NN-20 / NN-50 /
  NN-100) used in the Fig. 7 application benchmark, both as computation
  graphs for the simulator and as a small functional inference path running
  on the TFHE substrate.
* :mod:`repro.apps.boolean_circuits` — gate-level circuits (adders,
  comparators, multiplexer trees) built from the homomorphic gate set.
* :mod:`repro.apps.workloads` — generic workload generators (PBS batches,
  LUT pipelines) used by the microbenchmarks and tests.
"""

from repro.apps.deep_nn import DeepNNModel, ZAMA_DEEP_NN_MODELS, build_deep_nn_graph
from repro.apps.boolean_circuits import RippleCarryAdder, Comparator, boolean_circuit_graph
from repro.apps.workloads import pbs_batch_graph, lut_pipeline_graph, gate_workload_graph

__all__ = [
    "DeepNNModel",
    "ZAMA_DEEP_NN_MODELS",
    "build_deep_nn_graph",
    "RippleCarryAdder",
    "Comparator",
    "boolean_circuit_graph",
    "pbs_batch_graph",
    "lut_pipeline_graph",
    "gate_workload_graph",
]
