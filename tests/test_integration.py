"""End-to-end integration tests spanning multiple subsystems.

These tests exercise realistic flows: a client/server exchange with
serialized keys and ciphertexts, a small encrypted application executed both
functionally and through the performance models, and consistency checks
between the independent layers of the library (functional TFHE, the
operation-count CPU model and the architecture model must agree on the
structure of the work they describe).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.deep_nn import build_deep_nn_graph, ZAMA_DEEP_NN_MODELS
from repro.apps.workloads import pbs_batch_graph
from repro.arch.accelerator import StrixAccelerator
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import DEEP_NN_N1024, PARAM_SET_I, SMALL_PARAMETERS, TOY_PARAMETERS
from repro.sim.scheduler import StrixScheduler
from repro.tfhe import serialization
from repro.tfhe.bootstrap import programmable_bootstrap
from repro.tfhe.context import TFHEContext
from repro.tfhe.keyswitch import keyswitch


class TestClientServerFlow:
    def test_offloaded_evaluation_roundtrip(self, toy_context, tmp_path):
        """Client encrypts and ships ciphertexts + evaluation keys; an
        independent 'server' (fresh objects restored from disk) evaluates a
        LUT; the client decrypts the result."""
        client = toy_context
        keys = client.server_keys

        inputs = [0, 1, 2, 3]
        ciphertext_path = tmp_path / "inputs.npz"
        bsk_path = tmp_path / "bsk.npz"
        ksk_path = tmp_path / "ksk.npz"
        serialization.save_lwe_ciphertexts(ciphertext_path, [client.encrypt(m) for m in inputs])
        serialization.save_bootstrapping_key(bsk_path, keys.bootstrapping_key)
        serialization.save_keyswitching_key(ksk_path, keys.keyswitching_key)

        # Server side: restore everything from disk, never touching secrets.
        server_bsk = serialization.load_bootstrapping_key(bsk_path, TOY_PARAMETERS)
        server_ksk = serialization.load_keyswitching_key(ksk_path, TOY_PARAMETERS)
        server_inputs = serialization.load_lwe_ciphertexts(ciphertext_path, TOY_PARAMETERS)
        outputs = [
            programmable_bootstrap(
                ciphertext, lambda m: (3 * m + 1) % 4, server_bsk, TOY_PARAMETERS, server_ksk
            ).ciphertext
            for ciphertext in server_inputs
        ]
        results_path = tmp_path / "outputs.npz"
        serialization.save_lwe_ciphertexts(results_path, outputs)

        # Client side: decrypt.
        decrypted = [
            client.decrypt(ct)
            for ct in serialization.load_lwe_ciphertexts(results_path, TOY_PARAMETERS)
        ]
        assert decrypted == [(3 * m + 1) % 4 for m in inputs]


class TestCrossParameterSets:
    def test_small_parameters_full_pipeline(self, small_context):
        """The k=2 parameter set exercises the multi-mask GLWE paths."""
        for message in range(SMALL_PARAMETERS.message_modulus):
            result = small_context.programmable_bootstrap(
                small_context.encrypt(message), lambda m: (m + 2) % 4
            )
            assert small_context.decrypt(result.ciphertext) == (message + 2) % 4

    def test_extract_then_keyswitch_dimension_chain(self, small_context):
        """Sample extraction and keyswitching move between the documented
        dimensions: n -> k*N -> n."""
        keys = small_context.server_keys
        result = programmable_bootstrap(
            small_context.encrypt(1),
            lambda m: m,
            keys.bootstrapping_key,
            SMALL_PARAMETERS,
        )
        assert result.extracted.dimension == SMALL_PARAMETERS.k * SMALL_PARAMETERS.N
        switched = keyswitch(result.extracted, keys.keyswitching_key, SMALL_PARAMETERS)
        assert switched.dimension == SMALL_PARAMETERS.n
        assert small_context.decrypt(switched) == 1


class TestModelConsistency:
    """The independent layers must agree on the structure of the work."""

    def test_functional_and_cpu_model_agree_on_polynomial_counts(self):
        """The CPU model charges (k+1)*lb forward FFTs per iteration — the
        same number of digit polynomials the functional external product
        transforms."""
        cpu = ConcreteCpuModel()
        params = TOY_PARAMETERS
        iteration = cpu.blind_rotation_iteration_operations(params)
        per_fft = cpu.fft_operations(params)
        assert iteration["fft"] == pytest.approx((params.k + 1) * params.lb * per_fft)

    def test_architecture_and_functional_agree_on_decomposition_width(self, strix):
        """The HSC decomposer busy time is sized by the same (k+1)*lb digit
        polynomials the functional decomposition produces."""
        from repro.tfhe.decomposition import decompose_polynomial_list

        params = TOY_PARAMETERS
        stacked = np.zeros((params.k + 1, params.N), dtype=np.int64)
        digits = decompose_polynomial_list(stacked, params.lb, params.log2_base_pbs)
        busy = strix.core.pbs_cluster["decomposer"].busy_cycles_per_lwe(params)
        lanes = strix.config.effective_lanes * strix.config.colp
        assert busy == digits.shape[0] * params.N // lanes

    def test_scheduler_and_accelerator_agree_on_batch_time(self, strix):
        scheduler = StrixScheduler(strix)
        lwes = 512
        scheduled = scheduler.run(pbs_batch_graph(PARAM_SET_I, lwes)).total_time_s
        closed_form = strix.config.cycles_to_seconds(strix.pbs_batch_cycles(PARAM_SET_I, lwes))
        assert scheduled == pytest.approx(closed_form, rel=0.01)

    def test_all_platforms_rank_consistently_on_the_same_graph(self):
        """CPU, GPU and Strix all execute the same Deep-NN graph; the ranking
        must match the paper on every platform pair."""
        graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-20"], DEEP_NN_N1024)
        cpu_time = ConcreteCpuModel(threads=48).execute_graph(graph)
        gpu_time = NuFheGpuModel().execute_graph(graph)
        strix_time = StrixScheduler(StrixAccelerator()).run(graph).total_time_s
        assert strix_time < gpu_time < cpu_time

    def test_noise_model_predicts_functional_success(self):
        """The analytical decryption-failure margin must be comfortable for
        the parameter sets the functional tests rely on."""
        from repro.tfhe.noise import decryption_failure_margin

        assert decryption_failure_margin(TOY_PARAMETERS) > 3
        assert decryption_failure_margin(SMALL_PARAMETERS) > 3
        assert decryption_failure_margin(PARAM_SET_I) > 3


class TestDeterminism:
    def test_same_seed_same_ciphertexts(self):
        first = TFHEContext(TOY_PARAMETERS, seed=77)
        second = TFHEContext(TOY_PARAMETERS, seed=77)
        ct1, ct2 = first.encrypt(2), second.encrypt(2)
        np.testing.assert_array_equal(ct1.mask, ct2.mask)
        assert ct1.body == ct2.body

    def test_simulator_is_deterministic(self, strix):
        scheduler = StrixScheduler(strix)
        graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-20"], DEEP_NN_N1024)
        assert scheduler.run(graph).total_time_s == scheduler.run(graph).total_time_s
