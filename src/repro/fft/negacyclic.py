"""Twisted full-size negacyclic FFT.

A polynomial product modulo ``X^N + 1`` equals a cyclic convolution of the
sequences twisted by powers of a primitive ``2N``-th root of unity:

.. math::

    \\widehat{a}_k = \\sum_t a_t\\,\\omega^t\\,e^{-2\\pi i kt/N}
                  = a\\bigl(e^{-i\\pi(2k+1)/N}\\bigr),
    \\qquad \\omega = e^{-i\\pi/N}.

Multiplying the evaluations pointwise and applying the inverse FFT followed by
the inverse twist recovers the negacyclic product.  The transform is exact up
to floating-point error, so integer polynomial products are recovered by
rounding as long as the products fit comfortably inside a double's mantissa —
which is the case for TFHE external products, where one operand always holds
small decomposed digits.
"""

from __future__ import annotations

import numpy as np


class NegacyclicTransform:
    """Negacyclic polynomial transform of a fixed degree ``N``.

    Instances precompute the twisting factors so repeated transforms (the hot
    path of blind rotation) avoid recomputing them.
    """

    def __init__(self, degree: int):
        if degree < 2 or degree & (degree - 1):
            raise ValueError(f"degree must be a power of two >= 2, got {degree}")
        self.degree = degree
        indices = np.arange(degree)
        self._twist = np.exp(-1j * np.pi * indices / degree)
        self._untwist = np.conj(self._twist)

    # -- transforms ----------------------------------------------------------

    def forward(self, coefficients: np.ndarray) -> np.ndarray:
        """Transform real/integer coefficients to the negacyclic Fourier domain.

        Accepts an array whose last axis has length ``N``; the transform is
        applied along that axis, so batches of polynomials can be transformed
        in a single call.
        """
        coeffs = np.asarray(coefficients, dtype=np.float64)
        if coeffs.shape[-1] != self.degree:
            raise ValueError(
                f"expected last axis of length {self.degree}, got {coeffs.shape[-1]}"
            )
        return np.fft.fft(coeffs * self._twist, axis=-1)

    def inverse(self, spectrum: np.ndarray) -> np.ndarray:
        """Inverse transform returning real (float) coefficients."""
        values = np.asarray(spectrum, dtype=np.complex128)
        if values.shape[-1] != self.degree:
            raise ValueError(
                f"expected last axis of length {self.degree}, got {values.shape[-1]}"
            )
        return np.real(np.fft.ifft(values, axis=-1) * self._untwist)

    # -- convenience ----------------------------------------------------------

    def multiply(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Negacyclic product of two integer polynomials, rounded to integers.

        The result is returned as ``int64``; callers reduce modulo ``q``.
        """
        product = self.inverse(self.forward(a) * self.forward(b))
        return np.round(product).astype(np.int64)
