"""Schedule memoization: price repeated batch shapes in dictionary time.

The event-driven cost model is the faithful one — keyswitch overlap and
epoch fragmentation only show up when the cycle-level scheduler runs the
batch's real graph — but one discrete-event simulation per flushed batch
is what kept the serving tier on the closed-form analytical default.
Serving traffic, however, repeats a handful of batch *shapes*: the adaptive
batcher flushes at a fixed capacity over a stationary request mix, so the
same graphs are re-simulated thousands of times per trace.

:class:`ScheduleCache` exploits that.  It wraps any
:class:`~repro.sched.cost.CostModel` (the event-driven one in practice)
and memoizes :class:`~repro.sched.cost.BatchCost` results under an LRU
policy, keyed on everything the wrapped simulation can observe:

* the batch's request-mix signature
  (:func:`~repro.sched.cost.batch_mix_signature`) for whole-batch pricing,
  or a structural graph signature for pipeline-stage pricing;
* the TFHE parameter set — the *object*, not its name, so a structurally
  tweaked set under a reused name can never alias a cached schedule (the
  same invariant the stage-plan cache enforces);
* the device geometry (the device's frozen
  :class:`~repro.arch.config.StrixConfig`) — identical chips share
  entries, heterogeneous ones cannot collide.

Equal keys imply bit-for-bit equal schedules because the scheduler is a
deterministic function of (ordered graph structure, params, config) and
:func:`~repro.sched.cost.batch_graph` lowers equal signatures to
identically-ordered graphs.  Cached entries are therefore pure derived
data: they survive :meth:`ScheduleCache.reset` (only the per-simulation
hit/miss counters clear), exactly like the pipeline layout's stage-plan
cache.

The cluster wraps ``cost_model="event"`` in a :class:`ScheduleCache`
automatically (capacity via the ``cost_cache_capacity`` knob on
:class:`~repro.serve.server.ServeConfig`, :class:`~repro.serve.cluster
.StrixCluster` and the ``strix-cluster`` backend; ``0`` disables), which
is what makes the faithful model affordable as a serving default — see
``docs/performance.md``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.params import TFHEParameters
from repro.sched.cost import (
    BatchCost,
    CostModel,
    batch_mix_signature,
    get_cost_model,
)
from repro.sim.graph import ComputationGraph

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.serve.batcher import Batch
    from repro.serve.cluster import StrixDevice

#: Default number of priced schedules kept before LRU eviction.  Steady
#: traffic repeats a handful of shapes; 512 comfortably holds a multi-tenant
#: mix (per-entry cost is one :class:`BatchCost`, a few hundred bytes).
DEFAULT_COST_CACHE_CAPACITY = 512


class LruCache:
    """A small bounded LRU of pure derived values with hit/miss counters.

    The one bounded-cache implementation shared by :class:`ScheduleCache`
    and the pipeline layout's stage-plan cache, so the two per-shape caches
    cannot drift apart in eviction or accounting semantics.  Entries are
    pure derived data (schedules, stage plans): eviction can never change a
    result, only cost a recomputation, and :meth:`reset_counters` clears
    the per-simulation bookkeeping while keeping the entries.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("a bounded cache needs capacity of at least 1")
        self.capacity = capacity
        self._entries: dict = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get_or_compute(self, key, compute: "Callable[[], object]"):
        """The cached value for ``key``, computing (and caching) on miss."""
        value = self._entries.get(key)
        if value is not None:
            self.hits += 1
            # Move-to-back keeps eviction order LRU (dicts preserve
            # insertion order; the front is always the coldest entry).
            del self._entries[key]
            self._entries[key] = value
            return value
        self.misses += 1
        value = compute()
        if len(self._entries) >= self.capacity:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        self._entries[key] = value
        return value

    def reset_counters(self) -> None:
        """Clear hit/miss/eviction counters (cached entries are kept)."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0


def graph_signature(graph: ComputationGraph) -> tuple:
    """Structural identity of a computation graph, minus its node names.

    Everything the cycle-level scheduler's timing depends on, in insertion
    order: node kind, ciphertext count, per-ciphertext operations and the
    dependency structure (as indices into the node list, so renamed nodes —
    e.g. per-request prefixes — still collide).  Two graphs with equal
    signatures schedule bit-for-bit identically on the same device.
    """
    index_of = {node.name: index for index, node in enumerate(graph.nodes)}
    return tuple(
        (
            node.kind.value,
            node.ciphertexts,
            node.operations_per_ciphertext,
            tuple(sorted(index_of[dep] for dep in node.depends_on)),
        )
        for node in graph.nodes
    )


class ScheduleCache(CostModel):
    """LRU-memoized cost model: repeated shapes price as a dict lookup.

    Wraps ``inner`` (a cost model name or instance; the event-driven model
    by default) and caches its :class:`BatchCost` results.  The wrapper is
    transparent — :attr:`name` reports the inner model's registry name, so
    serving reports and config round-trips are unchanged — and exact:
    memoized results are bit-for-bit equal to what the inner model would
    have returned, for every layout (whole batches and pipeline stages).
    """

    def __init__(
        self,
        inner: "str | CostModel" = "event",
        capacity: int = DEFAULT_COST_CACHE_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError("a schedule cache needs capacity of at least 1")
        self.inner = get_cost_model(inner)
        self._cache = LruCache(capacity)

    @property
    def name(self) -> str:  # type: ignore[override]
        """The wrapped model's registry name (the cache is transparent)."""
        return self.inner.name

    @property
    def capacity(self) -> int:
        """Entries kept before the least-recently-used one is evicted."""
        return self._cache.capacity

    @property
    def hits(self) -> int:
        """Cache hits since the last :meth:`reset`."""
        return self._cache.hits

    @property
    def misses(self) -> int:
        """Cache misses (priced simulations) since the last :meth:`reset`."""
        return self._cache.misses

    @property
    def evictions(self) -> int:
        """LRU evictions since the last :meth:`reset`."""
        return self._cache.evictions

    # -- pricing -----------------------------------------------------------------

    def batch_cost(
        self, batch: "Batch", params: TFHEParameters, device: "StrixDevice"
    ) -> BatchCost:
        key = ("batch", batch_mix_signature(batch), params, device.accelerator.config)
        return self._cache.get_or_compute(
            key, lambda: self.inner.batch_cost(batch, params, device)
        )

    def stage_cost(
        self,
        stage_graph: ComputationGraph,
        params: TFHEParameters,
        device: "StrixDevice",
    ) -> BatchCost:
        key = ("stage", graph_signature(stage_graph), params, device.accelerator.config)
        return self._cache.get_or_compute(
            key, lambda: self.inner.stage_cost(stage_graph, params, device)
        )

    # -- bookkeeping --------------------------------------------------------------

    def reset(self) -> None:
        """Clear per-simulation counters (cached schedules are pure, kept)."""
        self.inner.reset()
        self._cache.reset_counters()

    @property
    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/eviction counters plus resident schedule count."""
        return {
            "hits": self._cache.hits,
            "misses": self._cache.misses,
            "evictions": self._cache.evictions,
            "entries": len(self._cache),
        }
