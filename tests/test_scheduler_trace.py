"""Tests for the epoch scheduler and the Fig. 8 occupancy trace."""

from __future__ import annotations

import pytest

from repro.apps.workloads import gate_workload_graph, lut_pipeline_graph, pbs_batch_graph
from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT
from repro.params import PARAM_SET_I, PARAM_SET_IV
from repro.sim.scheduler import StrixScheduler
from repro.sim.trace import build_occupancy_trace


@pytest.fixture(scope="module")
def scheduler(strix_module):
    return StrixScheduler(strix_module)


@pytest.fixture(scope="module")
def strix_module():
    return StrixAccelerator(STRIX_DEFAULT)


class TestStrixScheduler:
    def test_single_pbs_matches_latency_model(self, scheduler, strix_module):
        result = scheduler.run(pbs_batch_graph(PARAM_SET_I, 1))
        # One LWE: no batching possible, so the node takes the PBS latency
        # plus the (non-hidden) final keyswitch.
        expected_min = strix_module.pbs_latency_ms(PARAM_SET_I)
        assert result.total_time_ms >= expected_min
        assert result.total_time_ms < expected_min * 1.5
        assert result.total_pbs == 1

    def test_large_batch_achieves_peak_throughput(self, scheduler, strix_module):
        lwes = 4096
        result = scheduler.run(pbs_batch_graph(PARAM_SET_I, lwes))
        assert result.pbs_throughput == pytest.approx(
            strix_module.pbs_throughput(PARAM_SET_I), rel=0.1
        )

    def test_dependent_stages_serialize(self, scheduler):
        parallel = scheduler.run(pbs_batch_graph(PARAM_SET_I, 16))
        chained = scheduler.run(lut_pipeline_graph(PARAM_SET_I, stages=4, ciphertexts_per_stage=4))
        # Same total PBS count, but the chained version exposes only four
        # ciphertexts at a time: half the cores idle and every stage pays the
        # full single-LWE blind-rotation latency.
        assert chained.total_pbs == parallel.total_pbs
        assert chained.total_time_s > parallel.total_time_s

    def test_core_utilization_balanced_for_full_batches(self, scheduler):
        result = scheduler.run(pbs_batch_graph(PARAM_SET_I, 512))
        values = list(result.core_utilization.values())
        assert len(values) == 8
        assert max(values) - min(values) < 0.05

    def test_epoch_count_follows_capacity(self, scheduler, strix_module):
        capacity = strix_module.config.tvlp * strix_module.core.core_batch_size(PARAM_SET_I)
        result = scheduler.run(pbs_batch_graph(PARAM_SET_I, capacity * 2 + 1))
        assert result.total_epochs == 3

    def test_linear_nodes_much_cheaper_than_pbs(self, scheduler):
        graph = gate_workload_graph(PARAM_SET_I, gates=64, parallelism=64)
        pbs_only = scheduler.run(graph)
        from repro.sim.graph import ComputationGraph

        linear_graph = ComputationGraph(PARAM_SET_I, name="linear-only")
        linear_graph.add_linear_layer("lin", 64, 1000)
        linear_only = scheduler.run(linear_graph)
        assert linear_only.total_time_s < 0.01 * pbs_only.total_time_s

    def test_schedule_records_every_node(self, scheduler):
        graph = lut_pipeline_graph(PARAM_SET_I, stages=3, ciphertexts_per_stage=8)
        result = scheduler.run(graph)
        assert len(result.node_schedules) == 3
        ends = [schedule.end_s for schedule in result.node_schedules]
        assert ends == sorted(ends)
        assert result.total_time_s == pytest.approx(max(ends), rel=1e-9)

    def test_workload_and_parameter_metadata(self, scheduler):
        result = scheduler.run(pbs_batch_graph(PARAM_SET_IV, 8, name="iv-batch"))
        assert result.workload == "iv-batch"
        assert result.parameter_set == "IV"


class TestOccupancyTrace:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_occupancy_trace(StrixAccelerator(), PARAM_SET_I, lwes_per_core=3, iterations=2)

    def test_rows_include_compute_and_memory(self, trace):
        rows = trace.rows()
        for expected in ("rotator", "decomposer", "fft", "vma", "ifft", "accumulator", "local_scratchpad", "hbm"):
            assert expected in rows

    def test_wide_units_highly_utilized(self, trace):
        assert trace.utilization["fft"] > 0.8
        assert trace.utilization["vma"] > 0.8
        assert trace.utilization["decomposer"] > 0.8

    def test_rotator_about_half_utilized(self, trace):
        assert 0.3 < trace.utilization["rotator"] < 0.7

    def test_scratchpad_heavily_used(self, trace):
        assert trace.utilization["local_scratchpad"] > 0.7

    def test_hbm_partially_used(self, trace):
        """Fig. 8: HBM busy well below 100 % (≈60 %) for set I."""
        assert 0.2 < trace.utilization["hbm"] < 0.9

    def test_render_contains_all_rows(self, trace):
        text = trace.render()
        assert "rotator" in text and "hbm" in text
        assert "parameter set I" in text

    def test_horizon_positive(self, trace):
        assert trace.horizon_cycles() > 0

    def test_two_iterations_traced(self, trace):
        iterations = {interval.iteration for interval in trace.intervals if interval.unit == "fft"}
        assert iterations == {0, 1}
