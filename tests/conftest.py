"""Shared fixtures for the test suite.

Key generation and bootstrapping-key encryption are the slowest parts of the
functional TFHE tests, so contexts (with their server keys) are created once
per session and shared.  Tests never mutate the contexts' key material.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.arch.accelerator import StrixAccelerator
from repro.params import SMALL_PARAMETERS, TOY_PARAMETERS
from repro.tfhe.context import TFHEContext


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Deterministic random generator for tests that need raw randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def toy_context() -> TFHEContext:
    """A TFHE context on the fast TOY parameter set, with server keys."""
    context = TFHEContext(TOY_PARAMETERS, seed=2023)
    context.generate_server_keys()
    return context


@pytest.fixture(scope="session")
def small_context() -> TFHEContext:
    """A TFHE context on the SMALL parameter set (k=2), with server keys."""
    context = TFHEContext(SMALL_PARAMETERS, seed=2024)
    context.generate_server_keys()
    return context


@pytest.fixture(scope="session")
def strix() -> StrixAccelerator:
    """The default Strix accelerator model (TvLP=8, CLP=4, folded FFT)."""
    return StrixAccelerator()
