"""Table VI — FFT folding optimization effects.

Regenerates the folded vs non-folded Strix comparison on parameter set I and
checks the improvement factors against the paper (1.68x latency, 1.99x
throughput, 1.73x FFT area, 1.48x core area).
"""

from __future__ import annotations

from repro.analysis.folding_ablation import folding_ablation
from repro.params import PARAM_SET_I


def test_table6_fft_folding(benchmark, save_result):
    ablation = benchmark(folding_ablation, PARAM_SET_I)

    assert 1.5 <= ablation.latency_improvement <= 2.1
    assert 1.9 <= ablation.throughput_improvement <= 2.1
    assert 1.6 <= ablation.fft_area_improvement <= 1.85
    assert 1.35 <= ablation.core_area_improvement <= 1.65

    save_result("table6_folding", ablation.render())
