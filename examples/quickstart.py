"""Quickstart: encrypt, compute homomorphically, bootstrap, decrypt.

Runs on the fast TOY parameter set so the whole script finishes in a couple
of seconds.  It walks through the core TFHE capabilities the paper relies
on: encrypted arithmetic, programmable bootstrapping of an arbitrary
univariate function, and gate bootstrapping.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

from repro.params import TOY_PARAMETERS
from repro.tfhe import TFHEContext
from repro.tfhe.lut import LookUpTable


def main() -> None:
    print("== Strix reproduction quickstart ==")
    print(f"Parameter set: {TOY_PARAMETERS.describe()}\n")

    # 1. Key generation -------------------------------------------------------
    start = time.perf_counter()
    context = TFHEContext(TOY_PARAMETERS, seed=42)
    keys = context.generate_server_keys()
    print(
        f"Key generation took {time.perf_counter() - start:.2f} s "
        f"(evaluation keys: {keys.total_bytes / 1024:.0f} KiB)"
    )

    # 2. Encrypted arithmetic --------------------------------------------------
    a, b = 1, 2
    ct_a, ct_b = context.encrypt(a), context.encrypt(b)
    ct_sum = ct_a + ct_b
    print(f"Enc({a}) + Enc({b}) decrypts to {context.decrypt(ct_sum)}")

    # 3. Programmable bootstrapping --------------------------------------------
    p = TOY_PARAMETERS.message_modulus
    square = LookUpTable.from_function(lambda m: (m * m) % p, TOY_PARAMETERS)
    start = time.perf_counter()
    ct_square = context.apply_lut(context.encrypt(3), square)
    elapsed = time.perf_counter() - start
    print(f"PBS computed 3^2 mod {p} = {context.decrypt(ct_square)} in {elapsed * 1e3:.1f} ms")

    # Any univariate function works: evaluate a threshold during bootstrapping.
    is_large = context.programmable_bootstrap(context.encrypt(2), lambda m: 1 if m >= 2 else 0)
    print(f"threshold(2 >= 2) = {context.decrypt(is_large.ciphertext)}")

    # 4. Gate bootstrapping -----------------------------------------------------
    gates = context.gates()
    x = context.encrypt_boolean(True)
    y = context.encrypt_boolean(False)
    print(f"NAND(True, False) = {context.decrypt_boolean(gates.nand(x, y))}")
    print(f"XOR(True, False)  = {context.decrypt_boolean(gates.xor(x, y))}")
    print(f"MUX(True, x=True, y=False) = {context.decrypt_boolean(gates.mux(x, x, y))}")

    print("\nEvery gate output above was produced by a programmable bootstrap —")
    print("the operation Strix accelerates by 1,067x over a CPU (see the benchmarks/).")


if __name__ == "__main__":
    main()
