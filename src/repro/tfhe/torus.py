"""Discretized torus arithmetic.

TFHE works over the real torus ``T = R/Z`` discretized to ``q = 2^32``
levels.  A torus element is therefore an integer modulo ``q``; this module
provides the small set of helpers (reduction, signed/centered representation,
uniform and Gaussian sampling, rounding) shared by every ciphertext type.

All arrays use ``int64`` with values kept in the canonical range ``[0, q)``.
Using a signed 64-bit container for 32-bit torus values keeps intermediate
sums (e.g. LWE dot products with binary keys) exact without extra care.
"""

from __future__ import annotations

import numpy as np


def reduce(values: np.ndarray | int, q: int) -> np.ndarray | int:
    """Reduce values into the canonical torus range ``[0, q)``.

    For a power-of-two modulus the reduction is a bitwise mask: on two's
    complement ``int64`` values ``x & (q - 1)`` equals the floored
    ``np.mod(x, q)`` bit for bit (negative inputs included), and skips the
    integer division — this is the hot reduction of the vectorized kernels.
    """
    if np.isscalar(values) or isinstance(values, (int, np.integer)):
        return int(values) % q
    values = np.asarray(values, dtype=np.int64)
    if q & (q - 1) == 0:
        return values & (q - 1)
    return np.mod(values, q)


def to_signed(values: np.ndarray | int, q: int) -> np.ndarray | int:
    """Map canonical torus values to the centered range ``[-q/2, q/2)``."""
    half = q // 2
    if np.isscalar(values) or isinstance(values, (int, np.integer)):
        value = int(values) % q
        return value - q if value >= half else value
    canonical = np.mod(np.asarray(values, dtype=np.int64), q)
    return np.where(canonical >= half, canonical - q, canonical)


def uniform(shape, q: int, rng: np.random.Generator) -> np.ndarray:
    """Sample uniformly random torus elements."""
    return rng.integers(0, q, size=shape, dtype=np.int64)


def gaussian_noise(shape, std: float, q: int, rng: np.random.Generator) -> np.ndarray:
    """Sample rounded Gaussian noise.

    ``std`` is expressed as a fraction of the torus (the convention used by
    the parameter sets), so the discrete standard deviation is ``std * q``.
    """
    if std <= 0.0:
        return np.zeros(shape, dtype=np.int64)
    noise = rng.normal(0.0, std * q, size=shape)
    return np.mod(np.round(noise).astype(np.int64), q)


def round_to_multiple(values: np.ndarray | int, step: int, q: int):
    """Round torus values to the nearest multiple of ``step`` (mod ``q``)."""
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    if np.isscalar(values) or isinstance(values, (int, np.integer)):
        return ((int(values) + step // 2) // step * step) % q
    values = np.asarray(values, dtype=np.int64)
    return np.mod((values + step // 2) // step * step, q)


def switch_modulus(values: np.ndarray | int, q: int, new_modulus: int):
    """Rescale torus values from modulus ``q`` to ``new_modulus`` with rounding.

    This is the *modulus switching* step at the start of PBS (Algorithm 1,
    line 3), which maps 32-bit torus values onto ``Z_{2N}``.
    """
    if np.isscalar(values) or isinstance(values, (int, np.integer)):
        return ((int(values) * new_modulus + q // 2) // q) % new_modulus
    values = np.asarray(values, dtype=np.int64)
    return np.mod((values * new_modulus + q // 2) // q, new_modulus)


def absolute_distance(a, b, q: int):
    """Shortest wrap-around distance between two torus values."""
    diff = np.mod(np.asarray(a, dtype=np.int64) - np.asarray(b, dtype=np.int64), q)
    return np.minimum(diff, q - diff)
