"""Tests for the analysis layer — every table/figure reproduction."""

from __future__ import annotations

import pytest

from repro.analysis.breakdown import cpu_workload_breakdown
from repro.analysis.deep_nn_benchmark import deep_nn_benchmark
from repro.analysis.folding_ablation import folding_ablation
from repro.analysis.fragmentation import gpu_fragmentation_study, strix_batching_study
from repro.analysis.tables import (
    area_power_table,
    pbs_comparison_table,
    render_area_power_table,
)
from repro.analysis.tradeoffs import tvlp_clp_tradeoff
from repro.params import DEEP_NN_PARAMETER_SETS, PARAM_SET_I, PARAM_SET_II
from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS


class TestFig1Breakdown:
    def test_shares_match_paper(self):
        report = cpu_workload_breakdown(PARAM_SET_I)
        assert report.gate_shares["pbs"] == pytest.approx(0.65, abs=0.10)
        assert report.gate_shares["keyswitch"] == pytest.approx(0.30, abs=0.10)
        assert report.pbs_shares["blind_rotation"] == pytest.approx(0.98, abs=0.02)

    def test_render_mentions_components(self):
        text = cpu_workload_breakdown(PARAM_SET_I).render()
        for keyword in ("pbs", "keyswitch", "blind_rotation", "fft"):
            assert keyword in text

    def test_other_parameter_sets_keep_the_shape(self):
        report = cpu_workload_breakdown(PARAM_SET_II)
        assert report.gate_shares["pbs"] > report.gate_shares["keyswitch"]
        assert report.pbs_shares["blind_rotation"] > 0.9


class TestFig2Fragmentation:
    def test_device_level_staircase(self):
        study = gpu_fragmentation_study(max_ciphertexts=288, step=72)
        times = {point.ciphertexts: point.normalized_time for point in study.device_level}
        assert times[72] == pytest.approx(1.0)
        assert times[144] == pytest.approx(2.0)
        assert times[216] == pytest.approx(3.0)
        assert times[288] == pytest.approx(4.0)

    def test_core_level_on_gpu_does_not_help(self):
        study = gpu_fragmentation_study(max_lwes_per_core=3)
        normalized = [point.normalized_time for point in study.core_level]
        assert normalized == pytest.approx([1.0, 2.0, 3.0])

    def test_render_contains_both_curves(self):
        text = gpu_fragmentation_study().render()
        assert "Device-level" in text and "Core-level" in text

    def test_strix_batching_removes_fragments(self):
        comparisons = strix_batching_study([288, 784])
        for comparison in comparisons:
            assert comparison.strix_fragments <= comparison.gpu_fragments
            assert comparison.fragment_reduction >= 1.0
        by_count = {c.ciphertexts: c for c in comparisons}
        assert by_count[288].strix_fragments == 0
        assert by_count[288].gpu_fragments == 3


class TestTable3AreaPower:
    def test_totals(self):
        cost = area_power_table()
        assert cost.total_area_mm2 == pytest.approx(141.37, rel=0.03)
        assert cost.total_power_w == pytest.approx(77.14, rel=0.05)

    def test_render(self):
        text = render_area_power_table(area_power_table())
        assert "Global scratchpad" in text and "Total" in text


class TestTable5Comparison:
    @pytest.fixture(scope="class")
    def table(self):
        return pbs_comparison_table()

    def test_contains_all_platforms(self, table):
        platforms = {row.platform for row in table.rows}
        assert platforms >= {"Concrete", "NuFHE", "YKP", "XHEC", "Matcha", "Strix"}

    def test_strix_speedups_match_paper_headlines(self, table):
        assert table.speedup_over("Concrete", "I") == pytest.approx(1067, rel=0.15)
        assert table.speedup_over("NuFHE", "I") == pytest.approx(37, rel=0.15)
        assert table.speedup_over("Matcha", "I") == pytest.approx(7.4, rel=0.10)

    def test_strix_fastest_on_every_set(self, table):
        for name in ("I", "II", "III", "IV"):
            strix = table.strix_row(name)
            rivals = [
                row
                for row in table.rows
                if row.parameter_set == name and row.platform != "Strix"
            ]
            assert all(strix.throughput_pbs_per_s > row.throughput_pbs_per_s for row in rivals)

    def test_render(self, table):
        text = table.render()
        assert "Strix" in text and "Matcha" in text and "throughput" in text

    def test_missing_row_raises(self, table):
        with pytest.raises(KeyError):
            table.speedup_over("Concrete", "V")


class TestTable6Folding:
    @pytest.fixture(scope="class")
    def ablation(self):
        return folding_ablation()

    def test_improvement_factors_match_paper(self, ablation):
        assert ablation.throughput_improvement == pytest.approx(1.99, rel=0.05)
        assert ablation.fft_area_improvement == pytest.approx(1.73, rel=0.05)
        assert ablation.core_area_improvement == pytest.approx(1.48, rel=0.10)
        assert 1.5 <= ablation.latency_improvement <= 2.1

    def test_folded_design_strictly_better(self, ablation):
        assert ablation.latency_ms_folded < ablation.latency_ms_unfolded
        assert ablation.throughput_folded > ablation.throughput_unfolded
        assert ablation.fft_area_folded_mm2 < ablation.fft_area_unfolded_mm2

    def test_render(self, ablation):
        assert "FFT" in ablation.render()


class TestTable7Tradeoff:
    @pytest.fixture(scope="class")
    def study(self):
        return tvlp_clp_tradeoff()

    def test_five_operating_points(self, study):
        assert [(p.tvlp, p.clp) for p in study.points] == [
            (16, 2), (8, 4), (4, 8), (2, 16), (1, 32)
        ]

    def test_sweet_spot_is_paper_design_point(self, study):
        spot = study.sweet_spot()
        assert (spot.tvlp, spot.clp) == (8, 4)

    def test_bandwidth_monotone_in_clp(self, study):
        bandwidths = [point.required_bandwidth_gbps for point in study.points]
        assert bandwidths == sorted(bandwidths)

    def test_high_clp_becomes_memory_bound_and_loses_throughput(self, study):
        by_clp = {point.clp: point for point in study.points}
        assert not by_clp[2].memory_bound
        assert not by_clp[4].memory_bound
        assert by_clp[16].memory_bound and by_clp[32].memory_bound
        assert by_clp[32].throughput_pbs_per_s < by_clp[4].throughput_pbs_per_s / 2

    def test_low_clp_has_higher_latency(self, study):
        by_clp = {point.clp: point for point in study.points}
        assert by_clp[2].latency_ms > by_clp[4].latency_ms

    def test_render(self, study):
        text = study.render()
        assert "Sweet spot" in text and "TvLP=8" in text


class TestFig7DeepNN:
    @pytest.fixture(scope="class")
    def deepnn(self):
        # Restrict to one model to keep the test fast; the full sweep runs in
        # the benchmark harness.
        return deep_nn_benchmark(
            models={"NN-20": ZAMA_DEEP_NN_MODELS["NN-20"]},
            parameter_sets=DEEP_NN_PARAMETER_SETS,
        )

    def test_strix_always_fastest(self, deepnn):
        for result in deepnn.results:
            assert result.strix_time_ms < result.gpu_time_ms < result.cpu_time_ms

    def test_speedups_in_paper_band(self, deepnn):
        cpu_low, cpu_high = deepnn.speedup_range_vs_cpu()
        gpu_low, gpu_high = deepnn.speedup_range_vs_gpu()
        assert 20 <= cpu_low and cpu_high <= 80
        assert 5 <= gpu_low and gpu_high <= 25

    def test_time_grows_with_polynomial_degree(self, deepnn):
        times = {result.polynomial_degree: result.strix_time_ms for result in deepnn.results}
        assert times[1024] < times[2048] < times[4096]

    def test_render(self, deepnn):
        text = deepnn.render()
        assert "NN-20" in text and "Strix" in text
