"""Library micro-benchmarks: the cycle-level simulator.

Measures the cost of scheduling representative workload graphs on the Strix
model, so the simulator itself stays fast enough for parameter sweeps.  The
same three scenarios also run as a plain script that records the timings in
``BENCH_sim.json`` for the cross-PR perf trajectory::

    python benchmarks/bench_simulator.py
"""

from __future__ import annotations

import pytest

if __name__ == "__main__":  # script mode: make src/ importable before repro imports
    from harness import ensure_repro_importable

    ensure_repro_importable()

from repro.apps.deep_nn import ZAMA_DEEP_NN_MODELS, build_deep_nn_graph
from repro.apps.workloads import pbs_batch_graph
from repro.arch.accelerator import StrixAccelerator
from repro.params import DEEP_NN_N1024, PARAM_SET_I
from repro.sim.scheduler import StrixScheduler


@pytest.fixture(scope="module")
def scheduler():
    return StrixScheduler(StrixAccelerator())


def test_bench_schedule_pbs_batch(benchmark, scheduler):
    graph = pbs_batch_graph(PARAM_SET_I, 4096)
    result = benchmark(scheduler.run, graph)
    assert result.total_pbs == 4096


def test_bench_schedule_deep_nn_100(benchmark, scheduler):
    graph = build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
    result = benchmark(scheduler.run, graph)
    assert result.total_pbs == ZAMA_DEEP_NN_MODELS["NN-100"].pbs_count()


def test_bench_pbs_performance_sweep(benchmark):
    from repro.params import PAPER_PARAMETER_SETS

    accelerator = StrixAccelerator()

    def sweep():
        return [accelerator.pbs_performance(p) for p in PAPER_PARAMETER_SETS.values()]

    results = benchmark(sweep)
    assert len(results) == 4


def main() -> None:
    """Record the same three scenarios (plus deterministic model outputs)
    in ``BENCH_sim.json``."""
    import argparse

    from harness import BenchReport

    from repro.params import PAPER_PARAMETER_SETS

    parser = argparse.ArgumentParser(description="cycle-level simulator benchmark")
    parser.add_argument(
        "--output", default=None, help="output path (default: BENCH_sim.json)"
    )
    args = parser.parse_args()

    runner = StrixScheduler(StrixAccelerator())
    accelerator = StrixAccelerator()
    report = BenchReport("sim")
    report.time(
        "sim/schedule_pbs_batch_4096",
        lambda: runner.run(pbs_batch_graph(PARAM_SET_I, 4096)),
    )
    report.time(
        "sim/schedule_deep_nn_100",
        lambda: runner.run(
            build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
        ),
    )
    report.time(
        "sim/pbs_performance_sweep",
        lambda: [
            accelerator.pbs_performance(p) for p in PAPER_PARAMETER_SETS.values()
        ],
    )
    # Deterministic model outputs: these must not drift between commits
    # unless the performance model itself changed, which is exactly what the
    # regression gate (check_regression.py) exists to catch.
    batch_schedule = runner.run(pbs_batch_graph(PARAM_SET_I, 4096))
    report.add(
        "sim/pbs_batch_4096/latency", batch_schedule.total_time_s, "s"
    )
    nn_schedule = runner.run(
        build_deep_nn_graph(ZAMA_DEEP_NN_MODELS["NN-100"], DEEP_NN_N1024)
    )
    report.add("sim/deep_nn_100/latency", nn_schedule.total_time_s, "s")
    report.add("sim/deep_nn_100/epochs", nn_schedule.total_epochs, "epochs")
    for params in PAPER_PARAMETER_SETS.values():
        performance = accelerator.pbs_performance(params)
        report.add(
            f"sim/pbs_throughput/{params.name}",
            performance.throughput_pbs_per_s,
            "PBS/s",
        )
    path = report.write(args.output)
    print(f"[saved {len(report.records)} records to {path}]")


if __name__ == "__main__":
    main()
