"""Radix-encrypted integers: multi-digit arithmetic over TFHE.

A single TFHE ciphertext carries only a few message bits, so larger integers
are represented as a little-endian vector of digit ciphertexts in base
``2**digit_bits`` (the approach of Concrete's integer API and of the paper's
"operations for integer and fixed-point numbers" discussion).  Additions are
cheap linear operations; once a digit's carry headroom is exhausted a
*carry propagation* pass uses two programmable bootstraps per digit (one to
extract the digit value, one to extract the carry), which is exactly the
kind of PBS-heavy workload Strix batches across.

The implementation intentionally keeps one bit of carry headroom: with
``digit_bits = message_bits - 1`` a digit plus an incoming carry never
overflows the padded message space, so homomorphic results always decrypt
correctly after propagation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph
from repro.tfhe.context import TFHEContext
from repro.tfhe.lut import LookUpTable
from repro.tfhe.lwe import LweCiphertext


@dataclass
class EncryptedInteger:
    """An unsigned integer encrypted as little-endian radix digits."""

    digits: list[LweCiphertext]
    digit_bits: int
    params: TFHEParameters

    @property
    def num_digits(self) -> int:
        """Number of radix digits."""
        return len(self.digits)

    @property
    def bit_width(self) -> int:
        """Plaintext bit width the representation covers."""
        return self.num_digits * self.digit_bits

    @property
    def radix(self) -> int:
        """The digit base ``2**digit_bits``."""
        return 1 << self.digit_bits


class RadixIntegerCodec:
    """Encrypt / decrypt / compute on radix-encrypted integers.

    Parameters
    ----------
    context:
        The TFHE context providing keys and bootstrapping.
    digit_bits:
        Plaintext bits per digit.  Must leave at least one bit of headroom in
        the context's message space (``digit_bits < message_bits``) so a
        pending carry never overflows into the padding bit.
    num_digits:
        Number of digits per integer.
    """

    def __init__(self, context: TFHEContext, digit_bits: int | None = None, num_digits: int = 4):
        params = context.params
        if digit_bits is None:
            digit_bits = params.message_bits - 1
        if digit_bits < 1:
            raise ValueError("digit_bits must be at least 1")
        if digit_bits >= params.message_bits:
            raise ValueError(
                "digit_bits must leave carry headroom: need digit_bits < "
                f"message_bits ({digit_bits} >= {params.message_bits})"
            )
        if num_digits < 1:
            raise ValueError("num_digits must be at least 1")
        self.context = context
        self.params = params
        self.digit_bits = digit_bits
        self.num_digits = num_digits
        self.radix = 1 << digit_bits
        p = params.message_modulus
        self._digit_lut = LookUpTable.from_function(lambda m: m % self.radix, params)
        self._carry_lut = LookUpTable.from_function(lambda m: (m // self.radix) % p, params)

    # -- encoding ------------------------------------------------------------

    @property
    def max_value(self) -> int:
        """Largest representable plaintext value."""
        return self.radix**self.num_digits - 1

    def encrypt(self, value: int) -> EncryptedInteger:
        """Encrypt an unsigned integer digit by digit."""
        if not 0 <= value <= self.max_value:
            raise ValueError(f"value {value} out of range [0, {self.max_value}]")
        digits = []
        remaining = value
        for _ in range(self.num_digits):
            digits.append(self.context.encrypt(remaining % self.radix))
            remaining //= self.radix
        return EncryptedInteger(digits, self.digit_bits, self.params)

    def decrypt(self, value: EncryptedInteger) -> int:
        """Decrypt a radix integer (digits are reduced modulo the radix)."""
        total = 0
        for index, digit in enumerate(value.digits):
            total += (self.context.decrypt(digit) % self.radix) << (index * self.digit_bits)
        return total

    # -- arithmetic ------------------------------------------------------------

    def add(
        self, a: EncryptedInteger, b: EncryptedInteger, propagate: bool = True
    ) -> EncryptedInteger:
        """Homomorphic addition (digit-wise), optionally propagating carries.

        Without propagation the digit ciphertexts hold values up to
        ``2 * (radix - 1)``, still within the message space thanks to the
        carry headroom; with propagation every digit is reduced back below
        the radix using two PBS per digit.
        """
        self._check_compatible(a, b)
        summed = EncryptedInteger(
            [da + db for da, db in zip(a.digits, b.digits)], self.digit_bits, self.params
        )
        return self.propagate_carries(summed) if propagate else summed

    def add_scalar(
        self, a: EncryptedInteger, scalar: int, propagate: bool = True
    ) -> EncryptedInteger:
        """Add a plaintext integer to an encrypted one."""
        if not 0 <= scalar <= self.max_value:
            raise ValueError(f"scalar {scalar} out of range [0, {self.max_value}]")
        digits = []
        remaining = scalar
        for digit in a.digits:
            from repro.tfhe import encoding

            digits.append(digit.add_plaintext(encoding.encode(remaining % self.radix, self.params)))
            remaining //= self.radix
        result = EncryptedInteger(digits, self.digit_bits, self.params)
        return self.propagate_carries(result) if propagate else result

    def propagate_carries(self, value: EncryptedInteger) -> EncryptedInteger:
        """Restore the canonical form: every digit below the radix.

        Runs two programmable bootstraps per digit (value extraction and
        carry extraction), rippling the carry from the least significant
        digit upwards — ``2 * num_digits`` PBS in total, which is the cost
        model behind :func:`radix_addition_graph`.
        """
        keys = self.context.server_keys
        propagated: list[LweCiphertext] = []
        carry: LweCiphertext | None = None
        for digit in value.digits:
            with_carry = digit if carry is None else digit + carry
            clean = self._digit_lut.apply(with_carry, keys.bootstrapping_key, keys.keyswitching_key)
            carry = self._carry_lut.apply(with_carry, keys.bootstrapping_key, keys.keyswitching_key)
            propagated.append(clean)
        return EncryptedInteger(propagated, self.digit_bits, self.params)

    def pbs_per_addition(self) -> int:
        """Programmable bootstraps needed by one addition with propagation."""
        return 2 * self.num_digits

    def _check_compatible(self, a: EncryptedInteger, b: EncryptedInteger) -> None:
        if a.num_digits != b.num_digits or a.digit_bits != b.digit_bits:
            raise ValueError("operands must share digit count and digit width")


def radix_addition_graph(
    params: TFHEParameters,
    bit_width: int,
    digit_bits: int,
    additions: int,
) -> ComputationGraph:
    """Computation graph of ``additions`` independent radix additions.

    Used by the simulator to project large-integer workloads onto Strix: the
    carry ripple makes digits sequential, while independent additions batch
    across the test-vector level parallelism.
    """
    if bit_width % digit_bits:
        raise ValueError("bit_width must be a multiple of digit_bits")
    num_digits = bit_width // digit_bits
    graph = ComputationGraph(params, name=f"radix-add-{bit_width}bit-x{additions}")
    previous = None
    for digit in range(num_digits):
        name = f"digit{digit}"
        graph.add_pbs_layer(name, 2 * additions, depends_on=[previous] if previous else [])
        previous = name
    return graph
