"""Analytical baseline backends: the paper's CPU and GPU cost models.

Wraps :class:`~repro.baselines.cpu_model.ConcreteCpuModel` and
:class:`~repro.baselines.gpu_model.NuFheGpuModel` behind the common backend
interface so baseline comparisons are one ``backend=`` argument away from a
Strix simulation of the same workload.
"""

from __future__ import annotations

from typing import Any

from repro.arch.energy import CPU_POWER_W, GPU_POWER_W
from repro.baselines.cpu_model import ConcreteCpuModel
from repro.baselines.gpu_model import NuFheGpuModel
from repro.params import TFHEParameters
from repro.runtime.backend import Backend, register_backend
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.workload import WorkloadLike, as_graph


class AnalyticalBackend(Backend):
    """Executes workloads on an analytical platform cost model.

    Parameters
    ----------
    platform:
        ``"cpu"`` (Concrete-library model) or ``"gpu"`` (NuFHE model).
    threads:
        CPU thread count (ignored for the GPU).
    streaming_multiprocessors:
        GPU SM count (ignored for the CPU).
    """

    name = "analytical"

    def __init__(
        self,
        platform: str = "cpu",
        threads: int = 1,
        streaming_multiprocessors: int | None = None,
    ):
        if platform not in ("cpu", "gpu"):
            raise ValueError(f"unknown platform {platform!r}; expected 'cpu' or 'gpu'")
        self.platform = platform
        self.name = f"{platform}-analytical"
        if platform == "cpu":
            self.model = ConcreteCpuModel(threads=threads)
            self._power_w = CPU_POWER_W
        else:
            self.model = NuFheGpuModel(streaming_multiprocessors)
            self._power_w = GPU_POWER_W

    def run(
        self,
        workload: WorkloadLike,
        *,
        params: TFHEParameters | str | None = None,
        session: Session | None = None,
        inputs: Any = None,
        instances: int = 1,
        **options: Any,
    ) -> RunResult:
        """Estimate ``workload`` execution time on the modeled platform."""
        graph = as_graph(workload, params, instances)
        latency_s = self.model.execute_graph(graph)
        return RunResult(
            workload=graph.name,
            backend=self.name,
            parameter_set=graph.params.name,
            latency_s=latency_s,
            pbs_count=graph.total_pbs(),
            energy_j=self._power_w * latency_s,
            details={"platform": self.platform, "model": type(self.model).__name__},
        )


register_backend("cpu-analytical", lambda **options: AnalyticalBackend("cpu", **options))
register_backend("gpu-analytical", lambda **options: AnalyticalBackend("gpu", **options))
