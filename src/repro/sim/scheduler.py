"""Epoch scheduler: executes computation graphs on the Strix model.

Workloads are scheduled "in a series of epochs, with each epoch containing a
maximum number of LWEs equal to the product of device-level and core-level
batch sizes" (Section IV-C).  The scheduler walks the computation graph in
dependency order, splits every PBS node into epochs, runs the blind rotation
of each epoch on the HSC resources of the discrete-event engine and lets the
keyswitching of one epoch hide behind the blind rotation of the next.
Linear nodes are charged to a (cheap) vector unit on the host interface.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.accelerator import StrixAccelerator
from repro.params import TFHEParameters
from repro.sim.engine import SimulationEngine
from repro.sim.fragments import plan_fragments
from repro.sim.graph import ComputationGraph, ComputationNode, NodeKind


@dataclass
class NodeSchedule:
    """Timing of one graph node on the accelerator."""

    node: str
    kind: str
    start_s: float
    end_s: float
    epochs: int

    @property
    def duration_s(self) -> float:
        """Node execution time in seconds."""
        return self.end_s - self.start_s


@dataclass
class ScheduleResult:
    """Outcome of executing a computation graph."""

    workload: str
    parameter_set: str
    total_time_s: float
    node_schedules: list[NodeSchedule]
    total_pbs: int
    total_epochs: int
    core_utilization: dict[str, float] = field(default_factory=dict)

    @property
    def total_time_ms(self) -> float:
        """End-to-end execution time in milliseconds."""
        return self.total_time_s * 1e3

    @property
    def pbs_throughput(self) -> float:
        """Achieved PBS/s over the whole workload."""
        if self.total_time_s <= 0:
            return 0.0
        return self.total_pbs / self.total_time_s


@dataclass(frozen=True)
class _HotPathConstants:
    """Loop invariants of the epoch-scheduling hot path for one parameter set.

    Every field is a pure function of ``(params, config)``; hoisting them
    out of the per-node / per-epoch / per-core loops (and memoizing them per
    parameter set) changes no arithmetic — the same values feed the same
    expressions — so schedules stay bit-for-bit identical.
    """

    epoch_capacity: int
    iteration_latency_cycles: int
    initiation_interval: int
    keyswitch_cycles: int
    clock_hz: float


class StrixScheduler:
    """Maps computation graphs onto a :class:`StrixAccelerator`."""

    #: Homomorphic linear operations sustained per second by the host-side
    #: vector pipeline of one HSC (simple 32-bit multiply-accumulates over
    #: LWE vectors streaming from the private scratchpad sections).
    LINEAR_MACS_PER_CYCLE_PER_CORE = 16

    def __init__(self, accelerator: StrixAccelerator):
        self.accelerator = accelerator
        self.config = accelerator.config
        self._linear_macs_per_second = self.linear_macs_per_second(self.config)
        self._constants: dict[TFHEParameters, _HotPathConstants] = {}

    @classmethod
    def linear_macs_per_second(cls, config) -> float:
        """Chip-wide throughput of the host-side vector pipeline.

        Shared by the LINEAR-node scheduling below and the serving layer's
        cost model for PBS-free (encryption) requests, so the two never
        diverge.
        """
        return cls.LINEAR_MACS_PER_CYCLE_PER_CORE * config.tvlp * config.clock_hz

    # -- public API -----------------------------------------------------------

    def run(self, graph: ComputationGraph) -> ScheduleResult:
        """Execute a computation graph and return its schedule."""
        params = graph.params
        engine = SimulationEngine()
        for core in range(self.config.tvlp):
            engine.add_resource(f"hsc{core}")
        engine.add_resource("keyswitch")
        engine.add_resource("linear")

        finish_time: dict[str, float] = {}
        node_schedules: list[NodeSchedule] = []
        total_epochs = 0

        for node in graph.topological_order():
            ready = max((finish_time[dep] for dep in node.depends_on), default=0.0)
            if node.kind is NodeKind.LINEAR:
                end, epochs = self._schedule_linear(engine, node, ready)
            else:
                end, epochs = self._schedule_pbs_node(engine, node, params, ready)
            finish_time[node.name] = end
            total_epochs += epochs
            node_schedules.append(
                NodeSchedule(
                    node=node.name,
                    kind=node.kind.value,
                    start_s=ready,
                    end_s=end,
                    epochs=epochs,
                )
            )

        makespan = engine.makespan
        utilization = {
            name: engine.utilization(name)
            for name in engine.resources
            if name.startswith("hsc")
        }
        return ScheduleResult(
            workload=graph.name,
            parameter_set=params.name,
            total_time_s=makespan,
            node_schedules=node_schedules,
            total_pbs=graph.total_pbs(),
            total_epochs=total_epochs,
            core_utilization=utilization,
        )

    # -- internals -------------------------------------------------------------

    def _hot_path_constants(self, params: TFHEParameters) -> _HotPathConstants:
        """The per-parameter-set loop invariants (computed once, memoized)."""
        constants = self._constants.get(params)
        if constants is None:
            accelerator = self.accelerator
            constants = _HotPathConstants(
                epoch_capacity=(
                    self.config.tvlp * accelerator.core.core_batch_size(params)
                ),
                iteration_latency_cycles=accelerator.iteration_latency_cycles(params),
                initiation_interval=(
                    accelerator.pipeline_timing(params).initiation_interval
                ),
                keyswitch_cycles=accelerator.core.keyswitch_cycles(params),
                clock_hz=self.config.clock_hz,
            )
            self._constants[params] = constants
        return constants

    def _schedule_linear(
        self, engine: SimulationEngine, node: ComputationNode, ready: float
    ) -> tuple[float, int]:
        operations = node.ciphertexts * max(node.operations_per_ciphertext, 1)
        duration = operations / self._linear_macs_per_second
        entry = engine.schedule_activity("linear", duration, ready, label=node.name)
        return entry.end, 0

    def _schedule_pbs_node(
        self,
        engine: SimulationEngine,
        node: ComputationNode,
        params: TFHEParameters,
        ready: float,
    ) -> tuple[float, int]:
        # Everything that depends only on (params, config) — pipeline timing,
        # iteration latency, keyswitch cost, epoch capacity, the clock — is
        # hoisted out of the epoch/core loops below; `plan_epoch` is memoized
        # on the accelerator.  Same expressions, same values: schedules are
        # bit-for-bit identical to the unhoisted ones.
        accelerator = self.accelerator
        hot = self._hot_path_constants(params)
        plan = plan_fragments(node.ciphertexts, hot.epoch_capacity)
        wants_keyswitch = node.kind in (NodeKind.PBS_KS, NodeKind.KEYSWITCH)
        n = params.n

        node_end = ready
        for epoch_index, epoch_lwes in enumerate(plan.fragment_sizes):
            epoch_plan = accelerator.plan_epoch(params, epoch_lwes)
            epoch_end = ready
            for core_index, core_lwes in enumerate(epoch_plan.lwes_per_core):
                if core_lwes == 0:
                    continue
                if core_lwes == 1:
                    cycles = n * hot.iteration_latency_cycles
                else:
                    cycles = n * core_lwes * hot.initiation_interval
                duration = cycles / hot.clock_hz
                entry = engine.schedule_activity(
                    f"hsc{core_index}",
                    duration,
                    ready,
                    label=f"{node.name}/epoch{epoch_index}",
                )
                epoch_end = max(epoch_end, entry.end)

            if wants_keyswitch:
                ks_cycles = max(epoch_plan.lwes_per_core) * hot.keyswitch_cycles
                ks_duration = ks_cycles / hot.clock_hz
                ks_entry = engine.schedule_activity(
                    "keyswitch",
                    ks_duration,
                    epoch_end,
                    label=f"{node.name}/ks{epoch_index}",
                )
                # Keyswitching of this epoch overlaps the next epoch's blind
                # rotation; only the final epoch's keyswitch extends the node.
                if epoch_index == plan.num_passes - 1:
                    epoch_end = ks_entry.end

            node_end = max(node_end, epoch_end)
            # Successive epochs of the same node serialize naturally on the
            # HSC resources, so `ready` (the dependency bound) is unchanged.

        return node_end, plan.num_passes
