"""Tests for the TFHE parameter sets."""

from __future__ import annotations

import dataclasses

import pytest

from repro.params import (
    DEEP_NN_PARAMETER_SETS,
    PAPER_PARAMETER_SETS,
    PARAM_SET_I,
    PARAM_SET_IV,
    SMALL_PARAMETERS,
    TOY_PARAMETERS,
    get_parameters,
)


class TestPaperParameterSets:
    def test_all_four_sets_present(self):
        assert sorted(PAPER_PARAMETER_SETS) == ["I", "II", "III", "IV"]

    @pytest.mark.parametrize(
        "name, n, N, k, lb",
        [("I", 500, 1024, 1, 2), ("II", 630, 1024, 1, 3), ("III", 592, 2048, 1, 3), ("IV", 991, 16384, 1, 2)],
    )
    def test_table_iv_values(self, name, n, N, k, lb):
        params = PAPER_PARAMETER_SETS[name]
        assert (params.n, params.N, params.k, params.lb) == (n, N, k, lb)

    def test_security_levels(self):
        assert PAPER_PARAMETER_SETS["I"].security_bits == 110
        for name in ("II", "III", "IV"):
            assert PAPER_PARAMETER_SETS[name].security_bits == 128

    def test_deep_nn_sets_cover_the_three_degrees(self):
        assert sorted(DEEP_NN_PARAMETER_SETS) == [1024, 2048, 4096]
        for degree, params in DEEP_NN_PARAMETER_SETS.items():
            assert params.N == degree


class TestDerivedQuantities:
    def test_modulus_is_2_pow_32(self):
        assert PARAM_SET_I.q == 2 ** 32

    def test_delta_reserves_padding_bit(self):
        params = PARAM_SET_I
        assert params.delta * params.message_modulus * 2 == params.q

    def test_decomposed_polynomials(self):
        assert PARAM_SET_I.decomposed_polynomials == (PARAM_SET_I.k + 1) * PARAM_SET_I.lb

    def test_lwe_ciphertext_is_kb_scale(self):
        # Table I: TFHE ciphertexts are KB-level.
        assert PARAM_SET_I.lwe_ciphertext_bytes < 16 * 1024

    def test_bootstrapping_key_is_tens_of_mb(self):
        # Table I: bootstrapping keys are 10s-100s MB.
        size_mb = PARAM_SET_I.bootstrapping_key_bytes / 2 ** 20
        assert 10 < size_mb < 500

    def test_fourier_bsk_no_larger_than_time_domain(self):
        # Folded Fourier storage (N/2 complex points of 8 bytes) costs the
        # same as N 32-bit coefficients; it must never be larger.
        assert (
            PARAM_SET_I.bootstrapping_key_fourier_bytes
            <= PARAM_SET_I.bootstrapping_key_bytes
        )

    def test_ggsw_size_consistency(self):
        params = SMALL_PARAMETERS
        expected = (params.k + 1) * params.lb * (params.k + 1) * params.N * 4
        assert params.ggsw_ciphertext_bytes == expected

    def test_describe_mentions_name_and_dimensions(self):
        text = PARAM_SET_IV.describe()
        assert "IV" in text and "16384" in text and "991" in text


class TestValidation:
    def test_non_power_of_two_degree_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TOY_PARAMETERS, N=100)

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TOY_PARAMETERS, n=0)
        with pytest.raises(ValueError):
            dataclasses.replace(TOY_PARAMETERS, lb=0)

    def test_message_modulus_must_fit_polynomial(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TOY_PARAMETERS, message_bits=9)

    def test_get_parameters_lookup(self):
        assert get_parameters("I") is PARAM_SET_I
        assert get_parameters("TOY") is TOY_PARAMETERS
        assert get_parameters("NN-2048").N == 2048

    def test_get_parameters_unknown_name(self):
        with pytest.raises(KeyError):
            get_parameters("does-not-exist")

    def test_parameters_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            PARAM_SET_I.n = 1  # type: ignore[misc]
