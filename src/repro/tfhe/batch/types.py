"""Stacked-array ciphertext containers for the vectorized kernels.

The scalar tier represents a batch as ``list[LweCiphertext]`` — one Python
object, one mask array and one body int per ciphertext.  The vectorized
kernels instead operate on *stacks*: one ``(batch, dim)`` mask array plus a
``(batch,)`` body vector for a whole batch of LWE ciphertexts, and
``(batch, k, N)`` / ``(batch, N)`` arrays for GLWE accumulators.  These are
plain containers with shape validation and loss-free conversion to and from
the scalar objects; all arithmetic lives in
:mod:`repro.tfhe.batch.kernels`.

An empty batch is rejected at construction: every kernel in the chain would
silently return empty arrays, which hides caller bugs (a batcher that
flushed nothing), so the failure is loud and early instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.glwe import GlweCiphertext
from repro.tfhe.lwe import LweCiphertext


@dataclass
class LweBatch:
    """A stack of LWE ciphertexts sharing one dimension and parameter set.

    Attributes
    ----------
    masks:
        Array of shape ``(batch, dim)`` holding every mask row.
    bodies:
        Array of shape ``(batch,)`` holding the body scalars.
    params:
        Parameter set shared by the whole batch.
    """

    masks: np.ndarray
    bodies: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        q = self.params.q
        self.masks = torus.reduce(np.asarray(self.masks, dtype=np.int64), q)
        self.bodies = torus.reduce(np.asarray(self.bodies, dtype=np.int64), q)
        if self.masks.ndim != 2:
            raise ValueError(f"masks must have shape (batch, dim), got {self.masks.shape}")
        if self.bodies.shape != (self.masks.shape[0],):
            raise ValueError(
                f"bodies must have shape ({self.masks.shape[0]},), got {self.bodies.shape}"
            )
        if len(self) == 0:
            raise ValueError("an LWE batch must contain at least one ciphertext")

    def __len__(self) -> int:
        return int(self.masks.shape[0])

    @property
    def dimension(self) -> int:
        """LWE dimension shared by every ciphertext in the stack."""
        return int(self.masks.shape[1])

    @classmethod
    def from_ciphertexts(cls, ciphertexts: Sequence[LweCiphertext]) -> "LweBatch":
        """Stack scalar ciphertexts into one batch (loss-free).

        Every ciphertext must share one dimension and one modulus; an empty
        sequence raises, matching the constructor's contract.
        """
        if not ciphertexts:
            raise ValueError("an LWE batch must contain at least one ciphertext")
        dimensions = {ct.dimension for ct in ciphertexts}
        if len(dimensions) != 1:
            raise ValueError(f"ciphertexts have mixed dimensions: {sorted(dimensions)}")
        moduli = {ct.params.q for ct in ciphertexts}
        if len(moduli) != 1:
            raise ValueError("ciphertexts have mixed moduli and cannot be stacked")
        masks = np.stack([ct.mask for ct in ciphertexts])
        bodies = np.array([ct.body for ct in ciphertexts], dtype=np.int64)
        return cls(masks, bodies, ciphertexts[0].params)

    def to_ciphertexts(self) -> list[LweCiphertext]:
        """Unstack into scalar ciphertexts (loss-free inverse of stacking)."""
        return [
            LweCiphertext(self.masks[index], int(self.bodies[index]), self.params)
            for index in range(len(self))
        ]

    def __iter__(self) -> Iterable[LweCiphertext]:
        return iter(self.to_ciphertexts())


@dataclass
class GlweBatch:
    """A stack of GLWE ciphertexts (the blind-rotation accumulators).

    Attributes
    ----------
    masks:
        Array of shape ``(batch, k, N)``.
    bodies:
        Array of shape ``(batch, N)``.
    params:
        Parameter set shared by the whole batch.
    """

    masks: np.ndarray
    bodies: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        q = self.params.q
        self.masks = torus.reduce(np.asarray(self.masks, dtype=np.int64), q)
        self.bodies = torus.reduce(np.asarray(self.bodies, dtype=np.int64), q)
        n_poly = self.params.N
        if self.masks.ndim != 3 or self.masks.shape[2] != n_poly:
            raise ValueError(
                f"masks must have shape (batch, k, N={n_poly}), got {self.masks.shape}"
            )
        if self.bodies.shape != (self.masks.shape[0], n_poly):
            raise ValueError(
                f"bodies must have shape ({self.masks.shape[0]}, {n_poly}), "
                f"got {self.bodies.shape}"
            )
        if len(self) == 0:
            raise ValueError("a GLWE batch must contain at least one ciphertext")

    def __len__(self) -> int:
        return int(self.masks.shape[0])

    @property
    def k(self) -> int:
        """GLWE mask length shared by the stack."""
        return int(self.masks.shape[1])

    def to_ciphertexts(self) -> list[GlweCiphertext]:
        """Unstack into scalar GLWE ciphertexts."""
        return [
            GlweCiphertext(self.masks[index], self.bodies[index], self.params)
            for index in range(len(self))
        ]

    @classmethod
    def from_ciphertexts(cls, ciphertexts: Sequence[GlweCiphertext]) -> "GlweBatch":
        """Stack scalar GLWE ciphertexts into one batch."""
        if not ciphertexts:
            raise ValueError("a GLWE batch must contain at least one ciphertext")
        masks = np.stack([ct.mask for ct in ciphertexts])
        bodies = np.stack([ct.body for ct in ciphertexts])
        return cls(masks, bodies, ciphertexts[0].params)
