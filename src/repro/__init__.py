"""Strix reproduction library.

A from-scratch Python reproduction of "Strix: An End-to-End Streaming
Architecture with Two-Level Ciphertext Batching for Fully Homomorphic
Encryption with Programmable Bootstrapping" (MICRO 2023):

* :mod:`repro.runtime` — the unified batch-first execution API: a
  :class:`Session` owning keys and batch encrypt/decrypt/bootstrap, and a
  :func:`run` facade executing any workload on the ``"reference"``,
  ``"strix-sim"`` and ``"cpu-analytical"`` / ``"gpu-analytical"`` backends.
* :mod:`repro.tfhe` — a functional TFHE implementation (LWE/GLWE/GGSW,
  blind rotation, programmable bootstrapping, keyswitching, gates, LUTs).
* :mod:`repro.fft` — negacyclic FFT transforms including the folding scheme.
* :mod:`repro.arch` — the Strix accelerator model (functional units, HSC
  pipeline, memory system, area/power).
* :mod:`repro.sim` — the cycle-level simulation framework (computation
  graphs, blind-rotation fragments, epoch scheduling, occupancy traces).
* :mod:`repro.sched` — the scheduling core shared by the simulator and
  serving paths: placement layouts (data-parallel / pipeline / elastic)
  and batch cost models (analytical / event-driven).
* :mod:`repro.baselines` — CPU / GPU analytical models and published
  FPGA/ASIC reference points.
* :mod:`repro.apps` — Zama Deep-NN, boolean circuits, workload generators
  and serving-traffic traces.
* :mod:`repro.serve` — the multi-tenant serving layer: request queue,
  adaptive batcher, sharded multi-device :class:`~repro.serve.StrixCluster`
  and the :class:`~repro.serve.Server` facade (sync + asyncio).
* :mod:`repro.analysis` — the experiments reproducing every table and figure
  of the paper's evaluation.
"""

from repro.params import (
    PAPER_PARAMETER_SETS,
    PARAM_SET_I,
    PARAM_SET_II,
    PARAM_SET_III,
    PARAM_SET_IV,
    SMALL_PARAMETERS,
    TOY_PARAMETERS,
    TFHEParameters,
    get_parameters,
)
from repro.runtime import (
    Backend,
    RunResult,
    Session,
    compare,
    get_backend,
    list_backends,
    run,
)
from repro.sim.compiler import Netlist
from repro.tfhe.context import ServerKeys, TFHEContext

#: Serving-layer names re-exported lazily: the runtime facade should not pay
#: the serving layer's import cost (the registry already defers the
#: ``"strix-cluster"`` backend the same way).
_SERVE_EXPORTS = frozenset({"Server", "StrixCluster"})


def __getattr__(name: str):
    if name in _SERVE_EXPORTS:
        from repro import serve

        return getattr(serve, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__version__ = "1.2.0"

__all__ = [
    "TFHEParameters",
    "PAPER_PARAMETER_SETS",
    "PARAM_SET_I",
    "PARAM_SET_II",
    "PARAM_SET_III",
    "PARAM_SET_IV",
    "TOY_PARAMETERS",
    "SMALL_PARAMETERS",
    "get_parameters",
    "Backend",
    "Netlist",
    "RunResult",
    "Server",
    "ServerKeys",
    "Session",
    "StrixCluster",
    "TFHEContext",
    "compare",
    "get_backend",
    "list_backends",
    "run",
    "__version__",
]
