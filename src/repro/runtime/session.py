"""Batch-first user session: keys plus vectorized encrypt/decrypt/bootstrap.

The paper's central argument is that TFHE throughput comes from *batching* —
epochs of ``device batch x core batch`` ciphertexts streamed through the
accelerator (Section IV-C) — yet the original user API was strictly
per-ciphertext.  :class:`Session` is the batch-first front door: it owns a
:class:`~repro.tfhe.context.TFHEContext` (client keys and the server-key
split), exposes every per-ciphertext helper unchanged, and adds the batch
APIs (``encrypt_batch`` / ``decrypt_batch`` / ``bootstrap_batch`` /
``gate_batch``) whose chunk size mirrors the paper's two-level batch
geometry.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.arch.accelerator import StrixAccelerator
from repro.params import TFHEParameters, TOY_PARAMETERS
from repro.runtime.workload import WorkloadLike, resolve_params
from repro.tfhe import encoding, torus
from repro.tfhe.batch import (
    LweBatch,
    batch_encrypt,
    batch_gate,
    batch_phase,
    batch_programmable_bootstrap,
    resolve_kernels,
)
from repro.tfhe.bootstrap import BootstrapResult
from repro.tfhe.context import ServerKeys, TFHEContext
from repro.tfhe.gates import GateBootstrapper
from repro.tfhe.lut import LookUpTable
from repro.tfhe.lwe import LweCiphertext


class Session:
    """Owns key material and provides batch-first homomorphic operations.

    Parameters
    ----------
    params:
        TFHE parameter set (object or name such as ``"TOY"`` / ``"I"``);
        defaults to the fast test-sized set.
    seed:
        Seed for key generation and every encryption drawn from the session.
    accelerator:
        Strix model used to size batches (device/core batch geometry) and as
        the default simulation target; defaults to the paper's configuration.
    kernels:
        Kernel backend for the batch APIs: ``"scalar"`` (default) loops the
        per-ciphertext reference kernels, ``"vectorized"`` stacks each epoch
        into arrays and runs the bit-for-bit equal batch kernels of
        :mod:`repro.tfhe.batch`.  Unknown names raise
        :class:`repro.errors.UnknownKernelError` with a did-you-mean
        suggestion.  Server-side results are identical either way; only
        ``encrypt*_batch`` consumes the session RNG in a different order
        (bulk draws), so vectorized encryptions are equally valid but not
        byte-identical to a scalar-order transcript.
    """

    def __init__(
        self,
        params: TFHEParameters | str = TOY_PARAMETERS,
        seed: int | None = None,
        accelerator: StrixAccelerator | None = None,
        kernels: str = "scalar",
    ):
        resolved = resolve_params(params)
        self.context = TFHEContext(resolved, seed=seed)
        self.accelerator = accelerator or StrixAccelerator()
        self.kernels = resolve_kernels(kernels)
        self._gates: GateBootstrapper | None = None

    # -- key material ------------------------------------------------------------

    @property
    def params(self) -> TFHEParameters:
        """The session's TFHE parameter set."""
        return self.context.params

    @property
    def server_keys(self) -> ServerKeys:
        """The evaluation keys (generated on first access)."""
        return self.context.server_keys

    def generate_server_keys(self) -> ServerKeys:
        """Generate (and cache) the bootstrapping and keyswitching keys."""
        return self.context.generate_server_keys()

    def gates(self) -> GateBootstrapper:
        """A (cached) gate bootstrapper wired to this session's keys."""
        if self._gates is None:
            self._gates = self.context.gates()
        return self._gates

    # -- batch geometry (Section IV-C) --------------------------------------------

    @property
    def device_batch_size(self) -> int:
        """Ciphertexts batched across cores (the accelerator's TvLP)."""
        return self.accelerator.config.tvlp

    @property
    def core_batch_size(self) -> int:
        """Ciphertexts batched within one core for this parameter set."""
        return self.accelerator.core.core_batch_size(self.params)

    @property
    def batch_capacity(self) -> int:
        """Ciphertexts of one scheduling epoch (device x core batch)."""
        return self.device_batch_size * self.core_batch_size

    def iter_epochs(self, items: Sequence) -> Iterator[Sequence]:
        """Split a batch into epoch-sized chunks (the scheduler's unit)."""
        capacity = self.batch_capacity
        for start in range(0, len(items), capacity):
            yield items[start : start + capacity]

    # -- per-ciphertext API (delegates to the context) ------------------------------

    def encrypt(self, message: int) -> LweCiphertext:
        """Encrypt an integer message ``0 <= message < p``."""
        return self.context.encrypt(message)

    def decrypt(self, ciphertext: LweCiphertext) -> int:
        """Decrypt an LWE ciphertext to its integer message."""
        return self.context.decrypt(ciphertext)

    def encrypt_boolean(self, value: bool) -> LweCiphertext:
        """Encrypt a boolean with the gate-bootstrapping encoding."""
        return self.context.encrypt_boolean(value)

    def decrypt_boolean(self, ciphertext: LweCiphertext) -> bool:
        """Decrypt a gate-bootstrapping boolean ciphertext."""
        return self.context.decrypt_boolean(ciphertext)

    def programmable_bootstrap(
        self,
        ciphertext: LweCiphertext,
        function: Callable[[int], int],
        keyswitch: bool = True,
    ) -> BootstrapResult:
        """Run a full PBS evaluating ``function`` on the encrypted message."""
        return self.context.programmable_bootstrap(ciphertext, function, keyswitch)

    def apply_lut(self, ciphertext: LweCiphertext, lut: LookUpTable) -> LweCiphertext:
        """Apply a :class:`LookUpTable` homomorphically (one PBS)."""
        return self.context.apply_lut(ciphertext, lut)

    # -- batch API ------------------------------------------------------------------

    def encrypt_batch(self, messages: Iterable[int]) -> list[LweCiphertext]:
        """Encrypt a batch of integer messages."""
        messages = list(messages)
        if self.kernels == "scalar" or not messages:
            return [self.context.encrypt(message) for message in messages]
        values = encoding.encode_array(np.asarray(messages, dtype=np.int64), self.params)
        batch = batch_encrypt(values, self.context.lwe_key.bits, self.params, self.context.rng)
        return batch.to_ciphertexts()

    def decrypt_batch(self, ciphertexts: Iterable[LweCiphertext]) -> list[int]:
        """Decrypt a batch of integer ciphertexts."""
        ciphertexts = list(ciphertexts)
        if self.kernels == "scalar" or not ciphertexts:
            return [self.context.decrypt(ciphertext) for ciphertext in ciphertexts]
        batch = LweBatch.from_ciphertexts(ciphertexts)
        phases = batch_phase(batch, self._key_bits_for(batch.dimension))
        decoded = encoding.decode_array(phases, self.params)
        return [int(value) for value in np.mod(decoded, self.params.message_modulus)]

    def encrypt_boolean_batch(self, values: Iterable[bool]) -> list[LweCiphertext]:
        """Encrypt a batch of booleans."""
        values = list(values)
        if self.kernels == "scalar" or not values:
            return [self.context.encrypt_boolean(value) for value in values]
        eighth = self.params.q // 8
        encoded = np.where(np.asarray(values, dtype=bool), eighth, self.params.q - eighth)
        batch = batch_encrypt(encoded, self.context.lwe_key.bits, self.params, self.context.rng)
        return batch.to_ciphertexts()

    def decrypt_boolean_batch(self, ciphertexts: Iterable[LweCiphertext]) -> list[bool]:
        """Decrypt a batch of boolean ciphertexts."""
        ciphertexts = list(ciphertexts)
        if self.kernels == "scalar" or not ciphertexts:
            return [self.context.decrypt_boolean(ciphertext) for ciphertext in ciphertexts]
        batch = LweBatch.from_ciphertexts(ciphertexts)
        phases = batch_phase(batch, self._key_bits_for(batch.dimension))
        signed = torus.to_signed(phases, self.params.q)
        return [bool(value) for value in signed > 0]

    def bootstrap_batch(
        self,
        ciphertexts: Sequence[LweCiphertext],
        function: Callable[[int], int],
        keyswitch: bool = True,
    ) -> list[LweCiphertext]:
        """Bootstrap a batch of ciphertexts through the same function.

        Ciphertexts are processed in epoch-sized chunks (``batch_capacity``),
        mirroring how the accelerator would schedule them.  With the
        ``"vectorized"`` backend each chunk runs as one pass through the
        stacked-array PBS chain; results are bit-for-bit identical to the
        scalar loop.
        """
        refreshed: list[LweCiphertext] = []
        if self.kernels == "vectorized" and ciphertexts:
            keys = self.generate_server_keys()
            for epoch in self.iter_epochs(ciphertexts):
                result = batch_programmable_bootstrap(
                    LweBatch.from_ciphertexts(list(epoch)),
                    function,
                    keys.bootstrapping_key,
                    self.params,
                    keys.keyswitching_key if keyswitch else None,
                )
                refreshed.extend(result.ciphertexts.to_ciphertexts())
            return refreshed
        for epoch in self.iter_epochs(ciphertexts):
            for ciphertext in epoch:
                result = self.context.programmable_bootstrap(ciphertext, function, keyswitch)
                refreshed.append(result.ciphertext)
        return refreshed

    def apply_lut_batch(
        self, ciphertexts: Sequence[LweCiphertext], lut: LookUpTable
    ) -> list[LweCiphertext]:
        """Apply one LUT across a batch of ciphertexts (one PBS each)."""
        applied: list[LweCiphertext] = []
        if self.kernels == "vectorized" and ciphertexts:
            keys = self.generate_server_keys()
            entries = lut.entries
            for epoch in self.iter_epochs(ciphertexts):
                result = batch_programmable_bootstrap(
                    LweBatch.from_ciphertexts(list(epoch)),
                    lambda m: int(entries[m % len(entries)]),
                    keys.bootstrapping_key,
                    lut.params,
                    keys.keyswitching_key,
                )
                applied.extend(result.ciphertexts.to_ciphertexts())
            return applied
        for epoch in self.iter_epochs(ciphertexts):
            applied.extend(self.context.apply_lut(ciphertext, lut) for ciphertext in epoch)
        return applied

    def gate_batch(
        self, gate: str, *operand_batches: Sequence[LweCiphertext]
    ) -> list[LweCiphertext]:
        """Vectorized gate application: ``gate_batch("and", lhs, rhs)``.

        Every operand batch must have the same length; element ``i`` of the
        result is the gate applied to the ``i``-th element of every batch
        (three batches for ``"mux"``, one for ``"not"``).
        """
        if gate not in GateBootstrapper.PBS_COST:
            raise ValueError(
                f"unknown gate {gate!r}; known gates: {sorted(GateBootstrapper.PBS_COST)}"
            )
        if not operand_batches:
            raise ValueError("gate_batch needs at least one operand batch")
        lengths = {len(batch) for batch in operand_batches}
        if len(lengths) != 1:
            raise ValueError(f"operand batches have mismatched lengths: {sorted(lengths)}")
        if self.kernels == "vectorized" and lengths != {0}:
            keys = self.generate_server_keys()
            stacked = tuple(
                LweBatch.from_ciphertexts(list(batch)) for batch in operand_batches
            )
            result = batch_gate(
                gate, stacked, keys.bootstrapping_key, keys.keyswitching_key, self.params
            )
            return result.to_ciphertexts()
        method = getattr(self.gates(), _GATE_METHODS[gate])
        return [method(*operands) for operands in zip(*operand_batches)]

    # -- internals -----------------------------------------------------------------

    def _key_bits_for(self, dimension: int) -> np.ndarray:
        """Secret-key bit vector matching an LWE dimension (``n`` or ``k*N``)."""
        params = self.params
        if dimension == params.n:
            return self.context.lwe_key.bits
        if dimension == params.k * params.N:
            return self.context.glwe_key.extracted_lwe_key()
        raise ValueError(
            f"ciphertext dimension {dimension} matches neither the LWE key "
            f"({params.n}) nor the extracted key ({params.k * params.N})"
        )

    # -- execution facade --------------------------------------------------------------

    def run(self, workload: WorkloadLike, backend: str = "strix-sim", **options):
        """Execute a workload with this session's keys; see :func:`repro.runtime.run`."""
        from repro.runtime.api import run as run_workload

        return run_workload(workload, backend=backend, session=self, **options)


#: Gate name -> :class:`GateBootstrapper` method name.
_GATE_METHODS = {
    "not": "not_",
    "and": "and_",
    "or": "or_",
    "nand": "nand",
    "nor": "nor",
    "xor": "xor",
    "xnor": "xnor",
    "andny": "andny",
    "mux": "mux",
}
