"""Tests for radix-encrypted integer arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import PARAM_SET_I
from repro.tfhe.integer import RadixIntegerCodec, radix_addition_graph


@pytest.fixture(scope="module")
def codec(request):
    context = request.getfixturevalue("toy_context")
    return RadixIntegerCodec(context, digit_bits=1, num_digits=4)


class TestRadixCodec:
    def test_configuration(self, codec):
        assert codec.radix == 2
        assert codec.num_digits == 4
        assert codec.max_value == 15
        assert codec.pbs_per_addition() == 8

    @pytest.mark.parametrize("value", [0, 1, 7, 10, 15])
    def test_encrypt_decrypt_roundtrip(self, codec, value):
        assert codec.decrypt(codec.encrypt(value)) == value

    def test_out_of_range_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encrypt(16)
        with pytest.raises(ValueError):
            codec.encrypt(-1)

    @pytest.mark.parametrize("a, b", [(5, 9), (7, 8), (0, 15), (3, 3), (1, 1)])
    def test_addition_with_carry_propagation(self, codec, a, b):
        result = codec.add(codec.encrypt(a), codec.encrypt(b))
        assert codec.decrypt(result) == a + b
        # Canonical form: every digit is below the radix after propagation.
        for digit in result.digits:
            assert codec.context.decrypt(digit) < codec.radix

    def test_addition_without_propagation_still_decrypts(self, codec):
        raw = codec.add(codec.encrypt(5), codec.encrypt(2), propagate=False)
        # Digit sums may exceed the radix, but the weighted sum is preserved.
        total = 0
        for index, digit in enumerate(raw.digits):
            total += codec.context.decrypt(digit) << index
        assert total == 7

    @pytest.mark.parametrize("a, scalar", [(6, 7), (0, 15), (9, 2)])
    def test_scalar_addition(self, codec, a, scalar):
        result = codec.add_scalar(codec.encrypt(a), scalar)
        assert codec.decrypt(result) == a + scalar

    def test_chained_additions(self, codec):
        accumulator = codec.encrypt(1)
        for value in (2, 3, 4):
            accumulator = codec.add(accumulator, codec.encrypt(value))
        assert codec.decrypt(accumulator) == 10

    def test_incompatible_operands_rejected(self, codec, toy_context):
        other = RadixIntegerCodec(toy_context, digit_bits=1, num_digits=2)
        with pytest.raises(ValueError):
            codec.add(codec.encrypt(1), other.encrypt(1))

    def test_invalid_configuration_rejected(self, toy_context):
        with pytest.raises(ValueError):
            RadixIntegerCodec(toy_context, digit_bits=0)
        with pytest.raises(ValueError):
            RadixIntegerCodec(toy_context, digit_bits=2)  # no carry headroom for p=4
        with pytest.raises(ValueError):
            RadixIntegerCodec(toy_context, num_digits=0)

    def test_encrypted_integer_properties(self, codec):
        value = codec.encrypt(9)
        assert value.num_digits == 4
        assert value.bit_width == 4
        assert value.radix == 2


class TestRadixProperties:
    @given(st.integers(min_value=0, max_value=7), st.integers(min_value=0, max_value=7))
    @settings(max_examples=12, deadline=None)
    def test_addition_is_correct_for_random_operands(self, toy_context, a, b):
        codec = RadixIntegerCodec(toy_context, digit_bits=1, num_digits=4)
        result = codec.add(codec.encrypt(a), codec.encrypt(b))
        assert codec.decrypt(result) == a + b


class TestRadixGraph:
    def test_graph_structure(self):
        graph = radix_addition_graph(PARAM_SET_I, bit_width=32, digit_bits=2, additions=100)
        assert len(graph.levels()) == 16
        assert graph.total_pbs() == 2 * 100 * 16

    def test_bit_width_must_be_multiple(self):
        with pytest.raises(ValueError):
            radix_addition_graph(PARAM_SET_I, bit_width=10, digit_bits=3, additions=1)
