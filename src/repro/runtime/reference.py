"""Reference backend: functional execution on the real TFHE substrate.

Interprets a :class:`~repro.sim.compiler.Netlist` operation by operation with
the actual gates / PBS / linear arithmetic of :mod:`repro.tfhe` — every gate
output is a real bootstrap.  This is the ground truth the performance
backends are modeled against: the same netlist the simulator costs can be
decrypted and checked here.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Sequence

from repro.params import TFHEParameters
from repro.runtime.backend import Backend, register_backend
from repro.runtime.result import RunResult
from repro.runtime.session import _GATE_METHODS, Session
from repro.runtime.workload import WorkloadLike, as_netlist
from repro.sim.compiler import Netlist, Operation
from repro.tfhe.lut import LookUpTable
from repro.tfhe.lwe import LweCiphertext

#: How a wire's ciphertext is decoded: gate outputs (and boolean inputs) use
#: the ``±q/8`` gate-bootstrapping encoding, integer inputs and LUT/linear
#: outputs the message encoding.  Pre-encrypted ciphertexts passed straight
#: in are untyped — the caller vouches for their encoding — and decode as
#: messages if read back directly.
_BOOLEAN, _MESSAGE, _ANY = "boolean", "message", "any"

#: Default sessions for key-less reference runs, keyed by parameter set, so
#: repeated ``run(netlist, backend="reference")`` calls reuse the (expensive)
#: evaluation keys instead of regenerating them per call.
_DEFAULT_SESSIONS: dict[TFHEParameters, Session] = {}


def _default_session(params: TFHEParameters) -> Session:
    if params not in _DEFAULT_SESSIONS:
        _DEFAULT_SESSIONS[params] = Session(params, seed=0)
    return _DEFAULT_SESSIONS[params]


class ReferenceBackend(Backend):
    """Functionally executes netlists with the real TFHE implementation."""

    name = "reference"

    def run(
        self,
        workload: WorkloadLike,
        *,
        params: TFHEParameters | str | None = None,
        session: Session | None = None,
        inputs: Mapping[str, Any] | Sequence[Mapping[str, Any]] | None = None,
        instances: int = 1,
        outputs: Sequence[str] | None = None,
        **options: Any,
    ) -> RunResult:
        """Execute a netlist functionally and decrypt its outputs.

        ``inputs`` maps primary-input wires to plaintext values (``bool`` for
        the gate encoding, ``int`` for the message encoding) or to
        pre-encrypted ciphertexts; missing wires default to ``False``.  Pass
        a list of mappings to execute several independent instances — the
        batch the accelerator would fold into one epoch.
        """
        netlist = as_netlist(workload, params)
        if session is None:
            session = _default_session(netlist.params)
        elif session.params != netlist.params:
            raise ValueError(
                f"session parameter set {session.params.name!r} does not match "
                f"the workload's {netlist.params.name!r}"
            )
        session.generate_server_keys()

        if inputs is None:
            input_batches: list[Mapping[str, Any]] = [{}] * max(instances, 1)
        elif isinstance(inputs, Mapping):
            input_batches = [inputs] * max(instances, 1)
        else:
            input_batches = list(inputs)
            if instances != 1 and instances != len(input_batches):
                raise ValueError(
                    f"instances={instances} conflicts with {len(input_batches)} input mappings"
                )
        output_wires = list(outputs) if outputs is not None else netlist.output_wires()
        # LUT tables depend only on (function, params): tabulate each one once
        # for the whole instance batch.
        luts = {
            index: LookUpTable.from_function(operation.function or (lambda m: m), netlist.params)
            for index, operation in enumerate(netlist.operations)
            if operation.kind == "lut"
        }

        start = time.perf_counter()
        decrypted: list[dict[str, int | bool]] = [
            self._execute_instance(netlist, session, instance_inputs, output_wires, luts)
            for instance_inputs in input_batches
        ]
        elapsed = time.perf_counter() - start

        pbs_count = netlist.pbs_count() * len(input_batches)
        return RunResult(
            workload=netlist.name,
            backend=self.name,
            parameter_set=netlist.params.name,
            latency_s=elapsed,
            pbs_count=pbs_count,
            outputs=decrypted,
            details={"instances": len(input_batches), "wall_clock": True},
        )

    # -- interpreter ----------------------------------------------------------------

    def _execute_instance(
        self,
        netlist: Netlist,
        session: Session,
        inputs: Mapping[str, Any],
        output_wires: Sequence[str],
        luts: Mapping[int, LookUpTable],
    ) -> dict[str, int | bool]:
        values: dict[str, LweCiphertext] = {}
        tags: dict[str, str] = {}
        for wire in netlist.primary_inputs:
            value = inputs.get(wire, False)
            if isinstance(value, LweCiphertext):
                values[wire], tags[wire] = value, _ANY
            elif isinstance(value, bool):
                values[wire], tags[wire] = session.encrypt_boolean(value), _BOOLEAN
            else:
                values[wire], tags[wire] = session.encrypt(int(value)), _MESSAGE

        for index, operation in enumerate(netlist.operations):
            values[operation.output], tags[operation.output] = self._apply(
                operation, session, values, tags, luts.get(index)
            )

        result: dict[str, int | bool] = {}
        for wire in output_wires:
            if wire not in values:
                raise KeyError(f"requested output wire {wire!r} was never produced")
            if tags[wire] == _BOOLEAN:
                result[wire] = session.decrypt_boolean(values[wire])
            else:
                result[wire] = session.decrypt(values[wire])
        return result

    def _apply(
        self,
        operation: Operation,
        session: Session,
        values: dict[str, LweCiphertext],
        tags: dict[str, str],
        lut: LookUpTable | None,
    ) -> tuple[LweCiphertext, str]:
        operands = [values[wire] for wire in operation.inputs]
        # Gates work in the ±q/8 boolean encoding; LUT and linear operations
        # in the integer message encoding.  A wire crossing domains would
        # decode to garbage silently — the one thing a ground-truth backend
        # must never do — so mixing is rejected loudly.  Untyped passthrough
        # ciphertexts (tag "any") are the caller's responsibility.
        wrong_tag = _MESSAGE if operation.kind == "gate" else _BOOLEAN
        mismatched = [w for w in operation.inputs if tags[w] == wrong_tag]
        if mismatched:
            raise ValueError(
                f"{operation.kind} operation {operation.output!r} consumes "
                f"{wrong_tag}-encoded wire(s) {mismatched}; gates use the ±q/8 "
                "boolean encoding while lut/linear operations use the integer "
                "message encoding — the two cannot be mixed on one wire"
            )
        if operation.kind == "gate":
            method = getattr(session.gates(), _GATE_METHODS[operation.name])
            return method(*operands), _BOOLEAN
        if operation.kind == "lut":
            accumulator = operands[0]
            for operand in operands[1:]:
                accumulator = accumulator + operand
            return session.apply_lut(accumulator, lut), _MESSAGE
        if operation.kind == "linear":
            coefficients = operation.coefficients or (1,) * len(operands)
            accumulator: LweCiphertext | None = None
            for coefficient, operand in zip(coefficients, operands):
                if coefficient == 0:
                    continue
                term = operand if coefficient == 1 else operand.scalar_multiply(int(coefficient))
                accumulator = term if accumulator is None else accumulator + term
            if accumulator is None:
                accumulator = LweCiphertext.trivial(0, operands[0].dimension, session.params)
            tag = tags[operation.inputs[0]] if operation.inputs else _MESSAGE
            return accumulator, tag
        raise ValueError(f"unknown operation kind {operation.kind!r}")


register_backend(ReferenceBackend.name, ReferenceBackend)
