"""Serving: many tenants, one sharded Strix cluster.

Walks the :mod:`repro.serve` layer end to end: a :class:`repro.serve.Server`
coalesces small multi-tenant requests into epoch-sized batches (flush on
batch-full or deadline), ships them to a cluster of simulated Strix devices
under a sharding policy, and reports p50/p99 latency, throughput and
per-device utilization.  The same cluster also executes one large workload
sharded across every device via ``run(..., backend="strix-cluster")``.

Run with:  python examples/serving.py
"""

from __future__ import annotations

import asyncio

from repro import run
from repro.apps.traffic import TRAFFIC_PATTERNS
from repro.serve import Server


def traffic_patterns() -> None:
    """The serving simulation under three arrival patterns."""
    print("== Serving simulation: queue -> adaptive batcher -> cluster ==\n")
    traces = {
        "steady": TRAFFIC_PATTERNS["steady"](rate_rps=1500, duration_s=0.25, seed=7),
        "bursty": TRAFFIC_PATTERNS["bursty"](
            burst_rate_rps=6000, duration_s=0.25, seed=7
        ),
        "heavy-tail": TRAFFIC_PATTERNS["heavy-tail"](
            rate_rps=1500, duration_s=0.25, seed=7
        ),
    }
    for pattern, trace in traces.items():
        server = Server(devices=4, policy="least-loaded", params="I")
        report = server.simulate(trace, label=pattern)
        print(report.render())
        print()


def cluster_scaling() -> None:
    """One Fig. 7 Deep-NN workload sharded across 1 / 2 / 4 devices."""
    print("== Cluster scaling: NN-20 sharded across devices ==\n")
    single = run("NN-20", backend="strix-sim", params="I")
    print(f"{'strix-sim (1 device)':>24}: {single.latency_ms:8.3f} ms")
    for devices in (1, 2, 4):
        result = run("NN-20", backend="strix-cluster", devices=devices)
        speedup = single.latency_s / result.latency_s
        print(
            f"{f'strix-cluster ({devices} dev)':>24}: {result.latency_ms:8.3f} ms "
            f"({speedup:.2f}x, imbalance "
            f"{result.details['straggler']['imbalance']:.2f})"
        )
    print()


def scheduling_core() -> None:
    """The sched seams: layouts, cost models, QoS and key shipping."""
    print("== Scheduling core: layouts x cost models x QoS ==\n")
    trace = TRAFFIC_PATTERNS["heavy-tail"](rate_rps=1200, duration_s=0.2, seed=7)
    variants = {
        "data-parallel + analytical": {},
        "data-parallel + event": {"cost_model": "event"},
        "pipeline": {"layout": "pipeline"},
        "elastic": {"layout": "elastic"},
        "fair QoS": {"qos": "fair"},
    }
    for label, options in variants.items():
        server = Server(devices=4, policy="least-loaded", params="I", **options)
        report = server.simulate(trace, label=label)
        metrics = report.metrics
        shipping = metrics.cost_breakdown.get("key_shipping_s", 0.0)
        print(
            f"{label:>26}: p50 {metrics.latency.p50_s * 1e3:7.3f} ms, "
            f"p99 {metrics.latency.p99_s * 1e3:7.3f} ms, "
            f"key shipping {shipping * 1e3:7.3f} ms"
        )
    print()
    # One deep model pipelined stage-per-device, with per-stage breakdown.
    result = run("NN-100", backend="strix-cluster", devices=4, layout="pipeline")
    print("NN-100 pipelined over 4 devices:")
    for stage in result.details["stages"]:
        print(
            f"  stage on dev{stage['device']}: {stage['latency_s'] * 1e3:8.3f} ms, "
            f"{stage['pbs']:,} PBS, transfer in {stage['transfer_in_s'] * 1e6:6.2f} us"
        )
    print()


def key_memory() -> None:
    """Key residency under a finite per-device HBM budget."""
    print("== Key memory: eviction and re-shipping under an HBM budget ==\n")
    trace = TRAFFIC_PATTERNS["heavy-tail"](
        rate_rps=1200, duration_s=0.2, seed=7, tenants=12
    )
    probe = Server(devices=4, params="I")
    per_tenant = probe.cluster.interconnect.key_set_bytes(probe.params)
    print(f"one tenant's BSK+KSK set: {per_tenant / 1e6:.1f} MB")
    variants = {
        "unbounded": {},
        "2 tenants/device": {"key_budget_bytes": 2 * per_tenant + 1},
        "2 tenants + key-affinity": {
            "key_budget_bytes": 2 * per_tenant + 1,
            "policy": "key-affinity",
        },
    }
    for label, options in variants.items():
        policy = options.pop("policy", "least-loaded")
        server = Server(devices=4, policy=policy, params="I", **options)
        report = server.simulate(list(trace), label=label)
        metrics = report.metrics
        keys = metrics.key_cache
        shipping = metrics.cost_breakdown.get("key_shipping_s", 0.0)
        print(
            f"{label:>26}: p99 {metrics.latency.p99_s * 1e3:7.3f} ms, "
            f"shipping {shipping * 1e3:7.3f} ms, "
            f"{keys['evictions']:4d} evictions, {keys['reships']:4d} re-ships"
        )
    print()


async def async_submission() -> None:
    """The online path: awaitable per-request outcomes."""
    print("== Async submission: three tenants, one batcher ==\n")
    async with Server(devices=2, params="I", max_batch_delay_s=0.005) as server:
        jobs = [
            server.submit_async(f"tenant{index % 3}", "bootstrap", items=32)
            for index in range(9)
        ]
        outcomes = await asyncio.gather(*jobs)
    for outcome in outcomes[:3]:
        print(
            f"{outcome.request.tenant}: batch {outcome.batch_id} on "
            f"dev{outcome.device}, latency {outcome.latency_s * 1e3:.3f} ms"
        )
    batches = len({outcome.batch_id for outcome in outcomes})
    print(f"...{len(outcomes)} requests coalesced into {batches} batch(es)\n")


def main() -> None:
    traffic_patterns()
    cluster_scaling()
    scheduling_core()
    key_memory()
    asyncio.run(async_submission())
    print("Tenant key material stays per-tenant: Server.session_for(tenant)")
    print("derives a distinct Session (client/server keys) for every tenant.")


if __name__ == "__main__":
    main()
