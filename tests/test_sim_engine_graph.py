"""Tests for the discrete-event engine, computation graphs and fragments."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.params import TOY_PARAMETERS
from repro.sim.engine import SimulationEngine
from repro.sim.events import Event, TimelineEntry
from repro.sim.fragments import (
    blind_rotation_fragments,
    fragmented_execution_time,
    plan_fragments,
)
from repro.sim.graph import ComputationGraph, ComputationNode, NodeKind


class TestEvents:
    def test_events_order_by_time_then_priority(self):
        first = Event.at(1.0, lambda: None, priority=0)
        second = Event.at(2.0, lambda: None, priority=0)
        urgent = Event.at(1.0, lambda: None, priority=-1)
        assert first < second
        assert urgent < first

    def test_timeline_entry_duration(self):
        entry = TimelineEntry(resource="hsc0", label="x", start=1.0, end=3.5)
        assert entry.duration == pytest.approx(2.5)


class TestSimulationEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order: list[str] = []
        engine.schedule_event(2.0, lambda: order.append("late"))
        engine.schedule_event(1.0, lambda: order.append("early"))
        engine.run()
        assert order == ["early", "late"]
        assert engine.now == pytest.approx(2.0)

    def test_activities_serialize_on_a_resource(self):
        engine = SimulationEngine()
        first = engine.schedule_activity("hsc0", 10.0, earliest_start=0.0, label="a")
        second = engine.schedule_activity("hsc0", 5.0, earliest_start=0.0, label="b")
        assert first.start == 0.0 and first.end == 10.0
        assert second.start == 10.0 and second.end == 15.0

    def test_activities_on_different_resources_overlap(self):
        engine = SimulationEngine()
        a = engine.schedule_activity("hsc0", 10.0)
        b = engine.schedule_activity("hsc1", 10.0)
        assert a.start == b.start == 0.0

    def test_earliest_start_respected(self):
        engine = SimulationEngine()
        entry = engine.schedule_activity("hsc0", 1.0, earliest_start=7.0)
        assert entry.start == 7.0

    def test_makespan_and_utilization(self):
        engine = SimulationEngine()
        engine.schedule_activity("hsc0", 4.0)
        engine.schedule_activity("hsc1", 2.0)
        assert engine.makespan == pytest.approx(4.0)
        assert engine.utilization("hsc0") == pytest.approx(1.0)
        assert engine.utilization("hsc1") == pytest.approx(0.5)

    def test_entries_for_resource_sorted(self):
        engine = SimulationEngine()
        engine.schedule_activity("hsc0", 1.0, earliest_start=5.0)
        engine.schedule_activity("hsc0", 1.0, earliest_start=0.0)
        entries = engine.entries_for("hsc0")
        assert [entry.start for entry in entries] == sorted(entry.start for entry in entries)

    def test_empty_engine(self):
        engine = SimulationEngine()
        assert engine.makespan == 0.0
        assert engine.run() == 0.0


class TestComputationGraph:
    def _simple_graph(self) -> ComputationGraph:
        graph = ComputationGraph(TOY_PARAMETERS, name="simple")
        graph.add_linear_layer("lin", 10, 100)
        graph.add_pbs_layer("act", 10, depends_on=["lin"])
        graph.add_pbs_layer("act2", 5, depends_on=["act"])
        return graph

    def test_counts(self):
        graph = self._simple_graph()
        assert len(graph) == 3
        assert graph.total_pbs() == 15
        assert graph.total_keyswitches() == 15
        assert graph.total_linear_operations() == 1000

    def test_topological_order_respects_dependencies(self):
        graph = self._simple_graph()
        names = [node.name for node in graph.topological_order()]
        assert names.index("lin") < names.index("act") < names.index("act2")

    def test_levels_group_independent_nodes(self):
        graph = ComputationGraph(TOY_PARAMETERS)
        graph.add_pbs_layer("a", 1)
        graph.add_pbs_layer("b", 1)
        graph.add_pbs_layer("c", 1, depends_on=["a", "b"])
        levels = graph.levels()
        assert [sorted(node.name for node in level) for level in levels] == [["a", "b"], ["c"]]

    def test_duplicate_name_rejected(self):
        graph = ComputationGraph(TOY_PARAMETERS)
        graph.add_pbs_layer("a", 1)
        with pytest.raises(ValueError):
            graph.add_pbs_layer("a", 1)

    def test_unknown_dependency_rejected(self):
        graph = ComputationGraph(TOY_PARAMETERS)
        with pytest.raises(ValueError):
            graph.add_pbs_layer("a", 1, depends_on=["ghost"])

    def test_cycle_detection(self):
        graph = ComputationGraph(TOY_PARAMETERS)
        graph.add_pbs_layer("a", 1)
        graph.add_pbs_layer("b", 1, depends_on=["a"])
        # Introduce a cycle behind the API's back to exercise the check.
        graph.node("a").depends_on.append("b")
        with pytest.raises(ValueError):
            graph.topological_order()

    def test_node_kind_counting(self):
        node = ComputationNode("x", NodeKind.PBS, ciphertexts=7)
        assert node.pbs_count() == 7 and node.keyswitch_count() == 0
        node = ComputationNode("y", NodeKind.KEYSWITCH, ciphertexts=3)
        assert node.pbs_count() == 0 and node.keyswitch_count() == 3
        node = ComputationNode("z", NodeKind.LINEAR, ciphertexts=3, operations_per_ciphertext=5)
        assert node.pbs_count() == 0 and node.keyswitch_count() == 0

    def test_node_lookup(self):
        graph = self._simple_graph()
        assert graph.node("act").ciphertexts == 10
        with pytest.raises(KeyError):
            graph.node("missing")


class TestFragments:
    def test_equation_2_examples(self):
        # Fig. 2: 72 SMs — 72 ciphertexts fit in one pass, 73 need a second.
        assert blind_rotation_fragments(72, 72) == 0
        assert blind_rotation_fragments(73, 72) == 1
        assert blind_rotation_fragments(144, 72) == 1
        assert blind_rotation_fragments(145, 72) == 2
        assert blind_rotation_fragments(288, 72) == 3

    def test_equation_1_total_time(self):
        assert fragmented_execution_time(73, 72, 10.0) == pytest.approx(20.0)
        assert fragmented_execution_time(72, 72, 10.0) == pytest.approx(10.0)
        assert fragmented_execution_time(0, 72, 10.0) == 0.0

    def test_plan_fragments_sizes(self):
        plan = plan_fragments(200, 72)
        assert plan.fragment_sizes == (72, 72, 56)
        assert plan.num_passes == 3
        assert plan.fragments == 2
        assert 0 < plan.occupancy <= 1.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            blind_rotation_fragments(-1, 72)
        with pytest.raises(ValueError):
            blind_rotation_fragments(10, 0)
        with pytest.raises(ValueError):
            plan_fragments(10, 0)

    @given(st.integers(min_value=0, max_value=100000), st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_fragment_plan_conserves_ciphertexts(self, ciphertexts, batch):
        plan = plan_fragments(ciphertexts, batch)
        assert sum(plan.fragment_sizes) == ciphertexts
        assert all(0 < size <= batch for size in plan.fragment_sizes)
        assert plan.fragments == blind_rotation_fragments(ciphertexts, batch)

    @given(st.integers(min_value=1, max_value=100000), st.integers(min_value=1, max_value=4096))
    @settings(max_examples=200, deadline=None)
    def test_larger_batches_never_increase_fragments(self, ciphertexts, batch):
        assert blind_rotation_fragments(ciphertexts, batch) >= blind_rotation_fragments(
            ciphertexts, batch * 2
        )

    @given(st.integers(min_value=1, max_value=10000))
    @settings(max_examples=100, deadline=None)
    def test_two_level_batching_eliminates_fragments_up_to_capacity(self, ciphertexts):
        """Strix's 512-LWE batch (set I) has no fragmentation up to capacity."""
        strix_batch = 8 * 64
        fragments = blind_rotation_fragments(ciphertexts, strix_batch)
        if ciphertexts <= strix_batch:
            assert fragments == 0
        else:
            assert fragments == -(-ciphertexts // strix_batch) - 1
