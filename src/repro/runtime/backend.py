"""Backend protocol and named registry.

A *backend* is anything that can execute a workload and report a
:class:`~repro.runtime.result.RunResult`: the functional TFHE interpreter,
the cycle-level Strix simulator, or an analytical platform model.  Backends
register themselves under short names (``"reference"``, ``"strix-sim"``,
``"cpu-analytical"``, ``"gpu-analytical"``) so callers select execution
targets by string — the pluggability every scaling layer (sharding, async
serving) builds on.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from repro.errors import UnknownNameError
from repro.params import TFHEParameters
from repro.runtime.result import RunResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.runtime.session import Session


class Backend(abc.ABC):
    """Executes workloads; every concrete backend implements :meth:`run`."""

    #: Registry name of the backend (set by subclasses).
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def run(
        self,
        workload: Any,
        *,
        params: TFHEParameters | str | None = None,
        session: "Session | None" = None,
        inputs: Any = None,
        instances: int = 1,
        **options: Any,
    ) -> RunResult:
        """Execute ``workload`` and return a :class:`RunResult`.

        Backends accept the full keyword set and ignore what they do not
        model (the simulator has no use for ``inputs``; the functional
        interpreter has no use for resource options), so one call signature
        works across all of them.
        """


class UnknownBackendError(UnknownNameError):
    """Raised when a backend name is not in the registry.

    The shared :class:`~repro.errors.UnknownNameError` shape: still a
    ``KeyError`` for callers catching the registry's historical exception,
    renders as a plain sentence listing every registered backend with a
    did-you-mean suggestion, and survives pickling.
    """

    kind = "backend"


_REGISTRY: dict[str, Callable[..., Backend]] = {}


def register_backend(name: str, factory: Callable[..., Backend]) -> None:
    """Register a backend factory under ``name``.

    ``factory`` is called with the keyword arguments given to
    :func:`get_backend` and must return a :class:`Backend`.  Re-registering
    an existing name replaces the factory (deliberate: tests and downstream
    deployments swap implementations in).
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    _REGISTRY[name] = factory


def unregister_backend(name: str) -> None:
    """Remove a backend from the registry (no-op when absent)."""
    _REGISTRY.pop(name, None)


def list_backends() -> list[str]:
    """Names of all registered backends, sorted."""
    return sorted(_REGISTRY)


def get_backend(name: str, **factory_options: Any) -> Backend:
    """Instantiate the backend registered under ``name``.

    Raises :class:`UnknownBackendError` (a ``KeyError``) listing the known
    names — plus a did-you-mean suggestion — when ``name`` is unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name, list_backends()) from None
    return factory(**factory_options)
