"""Ablation: bootstrapping-key unrolling on top of Strix.

Matcha (the prior ASIC the paper compares against) reduces the number of
blind-rotation iterations by *unrolling*: grouping ``u`` LWE secret bits per
iteration at the cost of a bootstrapping key that grows as ``2^u - 1`` GGSW
ciphertexts per group (the paper's related-work discussion, reference [51]).
Strix deliberately does not use unrolling; this study quantifies what it
would buy or cost on top of the Strix datapath:

* iterations (and hence both latency and per-LWE compute) shrink by ``~u``;
* the bootstrapping key, and with it the per-iteration HBM traffic, grows by
  ``(2^u - 1) / u``, pushing the design towards the memory-bound regime.

The result reproduces the paper's implicit design argument: with a single
HBM stack, unrolling beyond 2 turns Strix memory bound and the throughput
gain evaporates, while the key size quickly becomes impractical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT, StrixConfig
from repro.params import PARAM_SET_I, TFHEParameters


@dataclass(frozen=True)
class UnrollingPoint:
    """Strix with a given bootstrapping-key unrolling factor."""

    unroll_factor: int
    iterations: int
    latency_ms: float
    throughput_pbs_per_s: float
    required_bandwidth_gbps: float
    bootstrapping_key_mb: float
    memory_bound: bool


@dataclass(frozen=True)
class UnrollingStudy:
    """The unrolling sweep."""

    parameter_set: str
    available_bandwidth_gbps: float
    points: list[UnrollingPoint]

    def best_compute_bound_factor(self) -> int:
        """Largest unrolling factor that stays compute bound."""
        factors = [point.unroll_factor for point in self.points if not point.memory_bound]
        return max(factors) if factors else 1

    def render(self) -> str:
        """Render the sweep as text."""
        lines = [
            f"Bootstrapping-key unrolling on Strix (parameter set {self.parameter_set}, "
            f"{self.available_bandwidth_gbps:.0f} GB/s)",
            f"  {'u':>3} {'iters':>6} {'latency (ms)':>13} {'throughput (PBS/s)':>20} "
            f"{'req. BW (GB/s)':>15} {'bsk (MB)':>9} {'bound':>8}",
        ]
        for point in self.points:
            lines.append(
                f"  {point.unroll_factor:>3} {point.iterations:>6} {point.latency_ms:>13.2f} "
                f"{point.throughput_pbs_per_s:>20,.0f} {point.required_bandwidth_gbps:>15.0f} "
                f"{point.bootstrapping_key_mb:>9.0f} "
                f"{'memory' if point.memory_bound else 'compute':>8}"
            )
        lines.append(
            f"  Largest compute-bound unrolling factor: u={self.best_compute_bound_factor()}"
        )
        return "\n".join(lines)


def unrolling_ablation(
    params: TFHEParameters = PARAM_SET_I,
    unroll_factors: list[int] | None = None,
    config: StrixConfig = STRIX_DEFAULT,
) -> UnrollingStudy:
    """Sweep the bootstrapping-key unrolling factor on the Strix model."""
    factors = unroll_factors or [1, 2, 3, 4]
    accelerator = StrixAccelerator(config)
    timing = accelerator.pipeline_timing(params)
    base_fragment = accelerator.hbm.global_scratchpad.bootstrapping_key_fragment_bytes(params)
    demand = accelerator.required_bandwidth(params)
    non_bsk_traffic = demand.keyswitching_key + demand.ciphertexts

    points = []
    for factor in factors:
        iterations = math.ceil(params.n / factor)
        # Each unrolled iteration consumes (2^u - 1) GGSW ciphertexts instead
        # of one, so the per-iteration fragment and therefore the fetch rate
        # grow accordingly while the iteration timing itself is unchanged
        # (the datapath still performs one external product per GGSW, but the
        # products of a group share a single accumulator traversal).
        fragment_bytes = base_fragment * (2 ** factor - 1)
        iteration_seconds = config.cycles_to_seconds(timing.initiation_interval)
        bsk_rate_gbps = fragment_bytes / iteration_seconds / 1e9
        required = bsk_rate_gbps + non_bsk_traffic
        memory_bound = required > config.hbm_bandwidth_gbps
        scaling = min(1.0, config.hbm_bandwidth_gbps / required)

        compute_throughput = (
            config.clock_hz / (iterations * timing.initiation_interval) * config.tvlp
        )
        throughput = compute_throughput * scaling
        latency_cycles = iterations * max(
            timing.iteration_latency,
            int(fragment_bytes / (config.hbm_bandwidth_gbps * config.bsk_channels / 16 * 1e9)
                * config.clock_hz),
        )
        key_mb = (
            params.n / factor * (2 ** factor - 1)
            * accelerator.hbm.global_scratchpad.bootstrapping_key_fragment_bytes(params)
            / 2 ** 20
        )
        points.append(
            UnrollingPoint(
                unroll_factor=factor,
                iterations=iterations,
                latency_ms=config.cycles_to_ms(latency_cycles),
                throughput_pbs_per_s=throughput,
                required_bandwidth_gbps=required,
                bootstrapping_key_mb=key_mb,
                memory_bound=memory_bound,
            )
        )
    return UnrollingStudy(
        parameter_set=params.name,
        available_bandwidth_gbps=config.hbm_bandwidth_gbps,
        points=points,
    )
