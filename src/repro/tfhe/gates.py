"""Boolean gate bootstrapping.

TFHE's original use case: booleans are encoded as ``±q/8``, a gate is a small
linear combination of its input ciphertexts followed by a sign bootstrap, so
every gate output is freshly bootstrapped (Section II-B).  The homomorphic
gate set defined here is the workload profiled in Fig. 1 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.params import TFHEParameters
from repro.tfhe.bootstrap import bootstrap_to_sign
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey
from repro.tfhe.lwe import LweCiphertext


@dataclass
class GateBootstrapper:
    """Evaluates boolean gates with one PBS (plus keyswitch) per gate.

    Attributes
    ----------
    bootstrapping_key / keyswitching_key:
        Evaluation keys produced during key generation.
    params:
        Parameter set (``q/8`` defines the boolean encoding).
    """

    bootstrapping_key: BootstrappingKey
    keyswitching_key: KeySwitchingKey
    params: TFHEParameters

    # -- helpers ---------------------------------------------------------------

    def _offset(self, numerator: int, denominator: int) -> int:
        """Torus constant ``numerator/denominator`` expressed modulo ``q``."""
        return (numerator * self.params.q // denominator) % self.params.q

    def _bootstrap(self, combination: LweCiphertext) -> LweCiphertext:
        return bootstrap_to_sign(
            combination,
            self.bootstrapping_key,
            self.params,
            self.keyswitching_key,
        ).ciphertext

    # -- gates -----------------------------------------------------------------

    def not_(self, a: LweCiphertext) -> LweCiphertext:
        """NOT: pure negation, no bootstrap needed."""
        return -a

    def and_(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """AND(a, b) = sign(-q/8 + a + b)."""
        combination = (a + b).add_plaintext(-self._offset(1, 8))
        return self._bootstrap(combination)

    def or_(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """OR(a, b) = sign(+q/8 + a + b)."""
        combination = (a + b).add_plaintext(self._offset(1, 8))
        return self._bootstrap(combination)

    def nand(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """NAND(a, b) = sign(+q/8 - a - b)."""
        combination = (-(a + b)).add_plaintext(self._offset(1, 8))
        return self._bootstrap(combination)

    def nor(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """NOR(a, b) = sign(-q/8 - a - b)."""
        combination = (-(a + b)).add_plaintext(-self._offset(1, 8))
        return self._bootstrap(combination)

    def xor(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """XOR(a, b) = sign(q/4 + 2*(a + b))."""
        combination = (a + b).scalar_multiply(2).add_plaintext(self._offset(1, 4))
        return self._bootstrap(combination)

    def xnor(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """XNOR(a, b) = sign(-q/4 - 2*(a + b))."""
        combination = (a + b).scalar_multiply(-2).add_plaintext(-self._offset(1, 4))
        return self._bootstrap(combination)

    def andny(self, a: LweCiphertext, b: LweCiphertext) -> LweCiphertext:
        """AND-NOT-Y: ``(not a) and b`` in a single bootstrap."""
        combination = (b - a).add_plaintext(-self._offset(1, 8))
        return self._bootstrap(combination)

    def mux(
        self, select: LweCiphertext, if_true: LweCiphertext, if_false: LweCiphertext
    ) -> LweCiphertext:
        """MUX(select, t, f) = (select AND t) OR ((NOT select) AND f).

        Uses three bootstraps; the dedicated two-bootstrap MUX of the TFHE
        library is a latency optimization that does not change throughput
        accounting, so the simple composition is used here.
        """
        first = self.and_(select, if_true)
        second = self.andny(select, if_false)
        return self.or_(first, second)

    #: Number of PBS operations each gate costs, used by the workload models.
    PBS_COST = {
        "not": 0,
        "and": 1,
        "or": 1,
        "nand": 1,
        "nor": 1,
        "xor": 1,
        "xnor": 1,
        "andny": 1,
        "mux": 3,
    }
