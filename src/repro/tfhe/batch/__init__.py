"""Vectorized batch kernels for the functional TFHE tier.

This package is the ``"vectorized"`` kernel backend: stacked-array
(:class:`LweBatch` / :class:`GlweBatch`) implementations of the hot PBS
chain — blind rotation, sample extraction, keyswitching, gate bootstrap —
that are **bit-for-bit equal** to the scalar reference in
:mod:`repro.tfhe` while amortizing numpy dispatch over the whole batch.

The backend is selected through the shared registry shape: pass
``kernels="vectorized"`` to :class:`repro.runtime.session.Session` or
:meth:`repro.runtime.reference.ReferenceBackend.run`; unknown names raise
:class:`repro.errors.UnknownKernelError` with a did-you-mean suggestion.
The default everywhere is ``"scalar"``, so existing traces and BENCH
records are untouched.
"""

from __future__ import annotations

from repro.errors import UnknownKernelError
from repro.tfhe.batch.gates import BATCH_GATES, batch_gate
from repro.tfhe.batch.kernels import (
    BatchBootstrapResult,
    batch_blind_rotate,
    batch_bootstrap_to_sign,
    batch_bootstrap_with_test_vector,
    batch_encrypt,
    batch_keyswitch,
    batch_modulus_switch,
    batch_monomial_multiply,
    batch_phase,
    batch_programmable_bootstrap,
    batch_sample_extract,
)
from repro.tfhe.batch.types import GlweBatch, LweBatch

#: Registered kernel backends, in registry (and documentation) order.
KERNEL_BACKENDS = ("scalar", "vectorized")


def resolve_kernels(name: str) -> str:
    """Validate a kernel-backend name against the registry.

    Returns the name unchanged when registered; raises
    :class:`~repro.errors.UnknownKernelError` (a ``KeyError`` *and*
    ``ValueError``) with the registered names and a did-you-mean
    suggestion otherwise.
    """
    if name not in KERNEL_BACKENDS:
        raise UnknownKernelError(name, list(KERNEL_BACKENDS))
    return name


__all__ = [
    "BATCH_GATES",
    "BatchBootstrapResult",
    "GlweBatch",
    "KERNEL_BACKENDS",
    "LweBatch",
    "batch_blind_rotate",
    "batch_bootstrap_to_sign",
    "batch_bootstrap_with_test_vector",
    "batch_encrypt",
    "batch_gate",
    "batch_keyswitch",
    "batch_modulus_switch",
    "batch_monomial_multiply",
    "batch_phase",
    "batch_programmable_bootstrap",
    "batch_sample_extract",
    "resolve_kernels",
]
