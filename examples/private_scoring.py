"""Privacy-preserving scoring: decision trees and encrypted counters.

A bank evaluates a (public) risk model on a customer's (private) data: the
customer submits encrypted features, the server runs a decision tree
homomorphically and accumulates the encrypted scores of several trees with
radix integer arithmetic — the tree-based inference workload the paper cites
as a key TFHE use case.  Finally the same workload is projected onto Strix
to show what the accelerator buys.

Run with:  python examples/private_scoring.py
"""

from __future__ import annotations

import time

from repro import get_backend, run
from repro.apps.tree_inference import (
    DecisionTree,
    HomomorphicTreeEvaluator,
    tree_inference_graph,
)
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.tfhe import TFHEContext
from repro.tfhe.integer import RadixIntegerCodec


def homomorphic_forest_scoring() -> None:
    print("== Homomorphic forest scoring (TOY parameters) ==")
    context = TFHEContext(TOY_PARAMETERS, seed=21)
    context.generate_server_keys()

    forest = [
        DecisionTree.random(depth=2, num_features=4, params=TOY_PARAMETERS, seed=seed)
        for seed in range(3)
    ]
    evaluators = [HomomorphicTreeEvaluator(context, tree) for tree in forest]
    codec = RadixIntegerCodec(context, digit_bits=1, num_digits=3)

    customer_features = [2, 0, 3, 1]
    print(f"customer features (private): {customer_features}")

    start = time.perf_counter()
    encrypted_features = [context.encrypt(value) for value in customer_features]
    encrypted_score = codec.encrypt(0)
    votes = []
    for evaluator in evaluators:
        encrypted_vote = evaluator.evaluate(encrypted_features)
        vote = context.decrypt(encrypted_vote) % 2  # (decrypted here only to narrate)
        votes.append(vote)
        encrypted_score = codec.add_scalar(encrypted_score, vote)
    elapsed = time.perf_counter() - start

    expected = sum(tree.predict(customer_features) for tree in forest)
    total_pbs = sum(e.pbs_count() for e in evaluators) + len(forest) * codec.pbs_per_addition()
    print(f"per-tree votes:            {votes}")
    print(f"encrypted score decrypts to {codec.decrypt(encrypted_score)} (expected {expected})")
    print(f"work: {total_pbs} programmable bootstraps in {elapsed:.2f} s of pure Python\n")


def acceleration_projection() -> None:
    print("== Projected scoring of 10,000 customers on a 100-tree forest ==")
    graph = tree_inference_graph(PARAM_SET_I, depth=6, trees=100, samples=10_000)
    strix = run(graph, backend="strix-sim")
    cpu = run(graph, backend=get_backend("cpu-analytical", threads=48))
    print(f"programmable bootstraps: {graph.total_pbs():,}")
    print(f"CPU (48 threads):        {cpu.latency_s:8.1f} s")
    print(
        f"Strix:                   {strix.latency_s:8.1f} s   "
        f"({cpu.latency_s / strix.latency_s:.0f}x faster)"
    )


def main() -> None:
    homomorphic_forest_scoring()
    acceleration_projection()


if __name__ == "__main__":
    main()
