"""Functional TFHE on the paper's parameter set I.

The unit tests run on reduced parameter sets for speed; this module executes
the real thing — the 110-bit-security parameter set I of Table IV — through
key generation, programmable bootstrapping and keyswitching.  It is marked
``slow`` (one full run takes on the order of tens of seconds in pure Python)
but is part of the default suite so the evaluation parameters are known to
work end to end.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.params import PARAM_SET_I
from repro.tfhe.context import TFHEContext

#: Parameter set I with the mask length reduced for test runtime.  Every
#: structural dimension that stresses the implementation (N=1024 polynomials,
#: the decomposition bases, the 110-bit noise levels) is kept; only the
#: number of blind-rotation iterations shrinks.
PARAM_SET_I_SHORT = dataclasses.replace(PARAM_SET_I, name="I-short", n=64)


@pytest.mark.slow
class TestParameterSetI:
    @pytest.fixture(scope="class")
    def context(self):
        ctx = TFHEContext(PARAM_SET_I_SHORT, seed=2025)
        ctx.generate_server_keys()
        return ctx

    def test_encrypt_decrypt(self, context):
        for message in range(PARAM_SET_I_SHORT.message_modulus):
            assert context.decrypt(context.encrypt(message)) == message

    def test_programmable_bootstrap_n1024(self, context):
        p = PARAM_SET_I_SHORT.message_modulus
        for message in range(p):
            result = context.programmable_bootstrap(
                context.encrypt(message), lambda m: (m + 1) % p
            )
            assert context.decrypt(result.ciphertext) == (message + 1) % p

    def test_gate_bootstrap_n1024(self, context):
        gates = context.gates()
        a = context.encrypt_boolean(True)
        b = context.encrypt_boolean(True)
        assert context.decrypt_boolean(gates.nand(a, b)) is False

    def test_evaluation_key_sizes_match_parameters(self, context):
        keys = context.server_keys
        assert keys.bootstrapping_key.size_bytes == PARAM_SET_I_SHORT.bootstrapping_key_fourier_bytes
        # The full set I bootstrapping key is in the 10s of MB (Table I).
        assert PARAM_SET_I.bootstrapping_key_fourier_bytes > 10 * 2 ** 20
