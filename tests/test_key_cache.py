"""Tests for key residency under a per-device HBM budget + stage-plan cache.

Covers the eviction policies (LRU / LFU / pinned) and their registry, the
budget-enforcement and re-shipping arithmetic of the residency manager, the
compatibility contract (unbounded budget — and a budget large enough for
every key set — stay bit-for-bit with the pre-eviction serving numbers),
the key-affinity sharding policy, and the pipeline layout's stage-plan
cache keyed on the batch request-mix signature.
"""

from __future__ import annotations

import pickle

import pytest

from repro import run
from repro.arch.config import StrixClusterConfig
from repro.arch.key_cache import (
    KeyResidencyManager,
    LRUEvictionPolicy,
    PinnedTenantPolicy,
    get_key_policy,
    hbm_key_budget_bytes,
    list_key_policies,
)
from repro.errors import UnknownKeyPolicyError, UnknownNameError
from repro.params import PARAM_SET_I
from repro.sched import batch_mix_signature, partition_graph_stages
from repro.sched.cost import batch_graph
from repro.serve import Request, Server, StrixCluster
from repro.serve.batcher import Batch
from repro.sim.graph import ComputationGraph


def make_batch(requests, batch_id=0, created_s=0.0):
    return Batch(
        batch_id=batch_id,
        requests=tuple(requests),
        created_s=created_s,
        flush_reason="full",
    )


def bootstrap_batch(items=8, tenant="t0", batch_id=0, request_id=1):
    return make_batch(
        [Request.make(request_id, tenant, "bootstrap", items)], batch_id=batch_id
    )


def key_set_bytes(cluster):
    return cluster.interconnect.key_set_bytes(PARAM_SET_I)


def budget_for(cluster, key_sets):
    """A per-device budget holding exactly ``key_sets`` params-I key sets."""
    return key_sets * key_set_bytes(cluster) + 1


# -- policy registry ----------------------------------------------------------------


def test_key_policy_registry():
    assert list_key_policies() == ["lfu", "lru", "pinned"]
    assert isinstance(get_key_policy("lru"), LRUEvictionPolicy)
    instance = PinnedTenantPolicy(pinned={"vip"})
    assert get_key_policy(instance) is instance


def test_unknown_key_policy_shares_did_you_mean_shape():
    with pytest.raises(UnknownKeyPolicyError) as excinfo:
        get_key_policy("lrru")
    error = excinfo.value
    assert isinstance(error, UnknownNameError)
    message = str(error)
    assert "unknown key-cache policy 'lrru'" in message
    assert "did you mean 'lru'?" in message
    assert str(pickle.loads(pickle.dumps(error))) == message


def test_hbm_key_budget_derivation():
    config = StrixClusterConfig()
    half = hbm_key_budget_bytes(config.device)
    assert half == int(config.device.hbm_capacity_gb * 1e9 * 0.5)
    assert hbm_key_budget_bytes(config.device, fraction=1.0) == 2 * half
    with pytest.raises(ValueError, match="fraction"):
        hbm_key_budget_bytes(config.device, fraction=0.0)
    # A 16 GB stack holds a few hundred ~22.5 MB key sets, not millions.
    per_tenant = StrixCluster(devices=1).interconnect.key_set_bytes(PARAM_SET_I)
    assert 100 < half // per_tenant < 1000


def test_cluster_config_validates_key_budget():
    with pytest.raises(ValueError, match="key-memory budget"):
        StrixClusterConfig(key_budget_bytes=0)
    tight = StrixClusterConfig().with_key_budget(1024, key_policy="lfu")
    assert tight.key_budget_bytes == 1024
    assert tight.key_policy == "lfu"


# -- eviction policies over the residency manager ------------------------------------


def manager(cluster, key_sets, policy="lru"):
    return KeyResidencyManager(
        devices=len(cluster.devices),
        interconnect=cluster.interconnect,
        budget_bytes=budget_for(cluster, key_sets),
        policy=policy,
    )


def test_lru_evicts_least_recently_used():
    cluster = StrixCluster(devices=1)
    residency = manager(cluster, key_sets=2, policy="lru")
    residency.place(["a"], (0,), PARAM_SET_I)
    residency.place(["b"], (0,), PARAM_SET_I)
    residency.place(["a"], (0,), PARAM_SET_I)  # refresh a: b is now coldest
    residency.place(["c"], (0,), PARAM_SET_I)
    assert residency.resident_devices("a") == frozenset({0})
    assert residency.resident_devices("b") == frozenset()
    assert residency.resident_devices("c") == frozenset({0})
    assert residency.stats.evictions == 1


def test_lfu_evicts_least_frequent():
    cluster = StrixCluster(devices=1)
    residency = manager(cluster, key_sets=2, policy="lfu")
    residency.place(["a"], (0,), PARAM_SET_I)
    residency.place(["b"], (0,), PARAM_SET_I)
    for _ in range(3):
        residency.place(["a"], (0,), PARAM_SET_I)
    residency.place(["b"], (0,), PARAM_SET_I)  # a used 4x, b used 2x
    residency.place(["c"], (0,), PARAM_SET_I)
    assert residency.resident_devices("a") == frozenset({0})
    assert residency.resident_devices("b") == frozenset()


def test_pinned_tenants_survive_churn():
    cluster = StrixCluster(devices=1)
    residency = KeyResidencyManager(
        devices=1,
        interconnect=cluster.interconnect,
        budget_bytes=budget_for(cluster, 2),
        policy=PinnedTenantPolicy(pinned={"vip"}),
    )
    residency.place(["vip"], (0,), PARAM_SET_I)
    for tenant in ("a", "b", "c", "d"):
        residency.place([tenant], (0,), PARAM_SET_I)
        assert residency.resident_devices("vip") == frozenset({0})
    assert residency.stats.evictions == 3  # a, b, c evicted; vip never


def test_per_device_pin_sets():
    cluster = StrixCluster(devices=2)
    # vip is untouchable on device 0 only; device 1 may evict it freely.
    policy = PinnedTenantPolicy(pinned={0: {"vip"}})
    assert policy.is_pinned(0, "vip")
    assert not policy.is_pinned(1, "vip")
    residency = KeyResidencyManager(
        devices=2,
        interconnect=cluster.interconnect,
        budget_bytes=budget_for(cluster, 2),
        policy=policy,
    )
    for device in (0, 1):
        residency.place(["vip"], (device,), PARAM_SET_I)
        for tenant in ("a", "b", "c"):
            residency.place([tenant], (device,), PARAM_SET_I)
    assert residency.resident_devices("vip") == frozenset({0})
    # pin() with a device argument extends one device's set, not the globals.
    policy.pin("gold", device=1)
    assert policy.is_pinned(1, "gold") and not policy.is_pinned(0, "gold")
    # pin() without a device stays global, alongside the per-device sets.
    policy.pin("everywhere")
    assert policy.is_pinned(0, "everywhere") and policy.is_pinned(1, "everywhere")


def test_all_protected_overcommits_instead_of_thrashing():
    cluster = StrixCluster(devices=1)
    residency = manager(cluster, key_sets=1, policy="lru")
    # One batch carries two tenants: both are protected during placement,
    # so the device overcommits rather than evicting a key it just shipped.
    residency.place(["a", "b"], (0,), PARAM_SET_I)
    assert residency.resident_devices("a") == frozenset({0})
    assert residency.resident_devices("b") == frozenset({0})
    assert residency.devices[0].over_budget
    # The next single-tenant placement brings the device back under budget.
    residency.place(["c"], (0,), PARAM_SET_I)
    assert not residency.devices[0].over_budget


def test_eviction_triggers_paid_reshipping():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=1, key_budget_bytes=budget_for_single(1))
    per_ship = cluster.interconnect.key_shipping_s(params)
    first = cluster.dispatch(bootstrap_batch(tenant="a"), 0.0, params)
    assert first.breakdown["key_shipping_s"] == 0.0  # onboarding is free
    second = cluster.dispatch(bootstrap_batch(tenant="b", batch_id=1), 0.0, params)
    assert second.breakdown["key_shipping_s"] == 0.0  # onboarding evicts a
    third = cluster.dispatch(bootstrap_batch(tenant="a", batch_id=2), 0.0, params)
    # a's keys were evicted: returning costs one full BSK/KSK re-ship.
    assert third.breakdown["key_shipping_s"] == pytest.approx(per_ship)
    stats = cluster.key_cache_stats
    assert stats["evictions"] >= 2
    assert stats["reships"] == 1
    assert stats["shipped_bytes"] == cluster.interconnect.key_set_bytes(params)


def budget_for_single(key_sets):
    return key_sets * StrixCluster(devices=1).interconnect.key_set_bytes(
        PARAM_SET_I
    ) + 1


# -- serving-level churn -------------------------------------------------------------


def churn_trace(tenants, rounds, items=8):
    requests = []
    request_id = 0
    for round_index in range(rounds):
        for tenant_index in range(tenants):
            request_id += 1
            requests.append(
                Request.make(
                    request_id,
                    f"tenant{tenant_index}",
                    "bootstrap",
                    items,
                    arrival_s=request_id * 1e-3,
                )
            )
    return requests


def test_tenant_churn_past_budget_surfaces_counters_in_report():
    server = Server(
        devices=2,
        policy="round-robin",
        params="I",
        key_budget_bytes=budget_for_single(2),
        batch_capacity=8,
    )
    report = server.simulate(churn_trace(tenants=6, rounds=4), label="churn")
    counters = report.metrics.key_cache
    assert counters["evictions"] > 0
    assert counters["reships"] > 0
    assert counters["misses"] >= counters["reships"]
    assert report.metrics.cost_breakdown["key_shipping_s"] > 0.0
    assert report.to_dict()["key_cache"] == counters
    assert "evictions" in report.render()


def test_unbounded_budget_never_evicts():
    server = Server(devices=2, policy="round-robin", params="I", batch_capacity=8)
    report = server.simulate(churn_trace(tenants=6, rounds=4), label="unbounded")
    counters = report.metrics.key_cache
    assert counters["evictions"] == 0
    assert counters["reships"] == 0
    assert counters["onboards"] == 6


def test_large_budget_matches_unbounded_serving_bit_for_bit():
    trace = churn_trace(tenants=4, rounds=3)
    unbounded = Server(devices=2, params="I", batch_capacity=8)
    bounded = Server(
        devices=2,
        params="I",
        batch_capacity=8,
        key_budget_bytes=hbm_key_budget_bytes(StrixClusterConfig().device),
    )
    baseline = unbounded.simulate(list(trace), label="x")
    budgeted = bounded.simulate(list(trace), label="x")
    assert budgeted.metrics.latency == baseline.metrics.latency
    assert budgeted.metrics.cost_breakdown == baseline.metrics.cost_breakdown
    assert budgeted.metrics.key_cache["evictions"] == 0


def test_single_device_large_budget_stays_bit_for_bit_with_strix_sim():
    from repro.serve.backend import StrixClusterBackend

    graph = ComputationGraph(PARAM_SET_I, name="invariant")
    graph.add_pbs_layer("lut0", 96)
    graph.add_pbs_layer("lut1", 64, depends_on=["lut0"])
    single = run(graph, backend="strix-sim")
    backend = StrixClusterBackend(
        devices=1,
        config=StrixClusterConfig(devices=1).with_key_budget(
            hbm_key_budget_bytes(StrixClusterConfig().device)
        ),
    )
    cluster = run(graph, backend=backend)
    assert cluster.latency_s == single.latency_s
    assert cluster.pbs_count == single.pbs_count


# -- key-affinity sharding -----------------------------------------------------------


def test_key_affinity_policy_follows_resident_keys():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=4, policy="key-affinity")
    first = cluster.dispatch(bootstrap_batch(tenant="t"), 0.0, params)
    assert first.breakdown["key_shipping_s"] == 0.0
    # Load the home device: a residency-blind least-loaded policy would now
    # migrate the tenant (and ship keys); key-affinity stays put.
    cluster.devices[first.device].busy_until = 1.0
    second = cluster.dispatch(bootstrap_batch(tenant="t", batch_id=1), 0.0, params)
    assert second.device == first.device
    assert second.breakdown["key_shipping_s"] == 0.0
    assert cluster.key_cache_stats["misses"] == 0


def test_key_affinity_falls_back_to_least_loaded_without_residency():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=3, policy="key-affinity")
    cluster.devices[0].busy_until = 5.0
    dispatch = cluster.dispatch(bootstrap_batch(tenant="fresh"), 0.0, params)
    assert dispatch.device == 1  # least loaded among the idle devices


# -- stage-plan cache ----------------------------------------------------------------


def inference_batch(request_id, tenant, batch_id):
    return make_batch(
        [
            Request.make(request_id, tenant, "inference", 1, model="NN-20"),
            Request.make(request_id + 1, tenant, "bootstrap", 16),
        ],
        batch_id=batch_id,
    )


def test_batch_mix_signature_ignores_ids_and_tenants():
    first = inference_batch(1, "alice", 0)
    second = inference_batch(7, "bob", 3)
    assert batch_mix_signature(first) == batch_mix_signature(second)
    different = make_batch([Request.make(9, "alice", "bootstrap", 17)], batch_id=4)
    assert batch_mix_signature(different) != batch_mix_signature(first)


def test_stage_plan_cache_hit_returns_identical_plan():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=4, layout="pipeline")
    layout = cluster.layout
    warm = layout._stage_plan(cluster, inference_batch(1, "alice", 0), params)
    hit = layout._stage_plan(cluster, inference_batch(7, "bob", 1), params)
    assert hit is warm
    assert layout.plan_cache_stats == {"hits": 1, "misses": 1, "entries": 1}

    # A cold partition of the same shape is structurally identical.
    cold = partition_graph_stages(
        batch_graph(inference_batch(1, "alice", 0), params), len(cluster.devices)
    )
    assert cold.boundary_ciphertexts == warm.boundary_ciphertexts
    assert [len(stage) for stage in cold.graphs] == [
        len(stage) for stage in warm.graphs
    ]
    for cold_stage, warm_stage in zip(cold.graphs, warm.graphs):
        for cold_node, warm_node in zip(cold_stage.nodes, warm_stage.nodes):
            assert cold_node.kind == warm_node.kind
            assert cold_node.ciphertexts == warm_node.ciphertexts
            assert (
                cold_node.operations_per_ciphertext
                == warm_node.operations_per_ciphertext
            )


def test_stage_plan_cache_distinguishes_shapes_and_survives_reset():
    params = PARAM_SET_I
    cluster = StrixCluster(devices=4, layout="pipeline")
    layout = cluster.layout
    layout._stage_plan(cluster, bootstrap_batch(items=32, tenant="a"), params)
    layout._stage_plan(cluster, bootstrap_batch(items=64, tenant="a"), params)
    assert layout.plan_cache_stats["misses"] == 2
    cluster.reset_serving_state()
    # Counters clear per simulation; cached plans are pure data and persist.
    assert layout.plan_cache_stats == {"hits": 0, "misses": 0, "entries": 2}
    layout._stage_plan(cluster, bootstrap_batch(items=32, tenant="b"), params)
    assert layout.plan_cache_stats["hits"] == 1


def test_stage_plan_cache_keys_on_param_structure_not_name():
    import dataclasses

    cluster = StrixCluster(devices=2, layout="pipeline")
    layout = cluster.layout
    base = layout._stage_plan(cluster, bootstrap_batch(items=64), PARAM_SET_I)
    # Same name, different structure: must not reuse the cached plan.
    tweaked = dataclasses.replace(PARAM_SET_I, n=PARAM_SET_I.n // 2)
    assert tweaked.name == PARAM_SET_I.name
    other = layout._stage_plan(cluster, bootstrap_batch(items=64), tweaked)
    assert other is not base
    assert layout.plan_cache_stats["misses"] == 2


def test_string_key_policy_override_lands_in_config():
    cluster = StrixCluster(devices=2, key_budget_bytes=1024, key_policy="lfu")
    assert cluster.config.key_policy == "lfu"
    assert cluster.config.key_budget_bytes == 1024
    rebuilt = StrixCluster(config=cluster.config)
    assert rebuilt.key_residency.policy.name == "lfu"
    assert rebuilt.key_residency.budget_bytes == 1024


def test_pipeline_serving_reports_plan_cache_counters():
    trace = churn_trace(tenants=2, rounds=3, items=4)
    server = Server(devices=2, params="I", layout="pipeline", batch_capacity=8)
    report = server.simulate(trace, label="pipeline")
    plans = report.metrics.stage_plan_cache
    assert plans["misses"] >= 1
    assert plans["hits"] >= 1  # repeated batch shapes reuse the cut
    assert report.to_dict()["stage_plan_cache"] == plans


# -- reset ---------------------------------------------------------------------------


def test_residency_reset_clears_everything():
    cluster = StrixCluster(devices=2, key_budget_bytes=budget_for_single(1))
    cluster.dispatch(bootstrap_batch(tenant="a"), 0.0, PARAM_SET_I)
    cluster.dispatch(bootstrap_batch(tenant="b", batch_id=1), 0.0, PARAM_SET_I)
    cluster.reset_serving_state()
    stats = cluster.key_cache_stats
    assert all(value == 0 for value in stats.values())
    assert cluster.key_residency.resident_devices("a") == frozenset()
    assert cluster.key_residency.resident_devices("b") == frozenset()


# -- device-death recovery (the fault injector's reclamation path) -------------------


def test_evict_device_reclaims_every_resident_tenant():
    cluster = StrixCluster(devices=2)
    manager = cluster.key_residency
    manager.place(["a", "b"], [0, 1], PARAM_SET_I)  # onboarding, free
    assert manager.resident_devices("a") == frozenset({0, 1})
    evicted = manager.evict_device(0)
    assert evicted == ["a", "b"]
    assert manager.resident_devices("a") == frozenset({1})
    assert manager.resident_devices("b") == frozenset({1})
    assert manager.stats.evictions == 2
    # Double death: the device is already empty, nothing more to reclaim.
    assert manager.evict_device(0) == []
    assert manager.stats.evictions == 2


def test_death_then_return_pays_exactly_one_reship():
    cluster = StrixCluster(devices=2)
    manager = cluster.key_residency
    per_ship = cluster.interconnect.key_shipping_s(PARAM_SET_I)
    manager.place(["a"], [0, 1], PARAM_SET_I)
    manager.evict_device(0)
    # The healed device returns empty: landing there again re-ships once.
    assert manager.place(["a"], [0], PARAM_SET_I) == pytest.approx(per_ship)
    assert manager.stats.reships == 1
    # Now resident again: the next placement is a hit, not another ship.
    assert manager.place(["a"], [0], PARAM_SET_I) == 0.0
    assert manager.stats.reships == 1


def test_die_heal_die_charges_each_return():
    cluster = StrixCluster(devices=2)
    manager = cluster.key_residency
    per_ship = cluster.interconnect.key_shipping_s(PARAM_SET_I)
    manager.place(["a"], [0, 1], PARAM_SET_I)
    manager.evict_device(0)
    assert manager.place(["a"], [0], PARAM_SET_I) == pytest.approx(per_ship)
    manager.evict_device(0)
    assert manager.place(["a"], [0], PARAM_SET_I) == pytest.approx(per_ship)
    assert manager.stats.reships == 2
    assert manager.stats.evictions == 2  # one resident tenant, two deaths


def test_evict_device_notifies_the_policy():
    cluster = StrixCluster(devices=2, key_budget_bytes=budget_for_single(2))
    manager = cluster.key_residency
    manager.place(["a", "b"], [0], PARAM_SET_I)
    manager.evict_device(0)
    # LRU state for the device is gone: re-placing both starts fresh and
    # stays within budget without phantom entries.
    manager.place(["a", "b"], [0], PARAM_SET_I)
    assert manager.resident_devices("a") == frozenset({0})
    assert manager.resident_devices("b") == frozenset({0})
