"""Secret keys and evaluation (bootstrapping / keyswitching) keys.

The four entities of Section II-D: LWE ciphertexts and GLWE test-vectors are
defined in :mod:`repro.tfhe.lwe` / :mod:`repro.tfhe.glwe`; this module holds
the secret keys and builds the two large evaluation keys:

* the **bootstrapping key** — one GGSW encryption (under the GLWE key) of
  each bit of the LWE secret key, stored in the Fourier domain;
* the **keyswitching key** — LWE encryptions (under the original LWE key) of
  the scaled bits of the GLWE key flattened into an LWE key of dimension
  ``k * N``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus
from repro.tfhe.ggsw import FourierGgswCiphertext, GgswCiphertext
from repro.tfhe.lwe import LweCiphertext


@dataclass
class LweSecretKey:
    """Binary LWE secret key of dimension ``n``."""

    bits: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=np.int64)
        if not np.all((self.bits == 0) | (self.bits == 1)):
            raise ValueError("LWE secret key must be binary")

    @property
    def dimension(self) -> int:
        """Key dimension."""
        return int(self.bits.shape[0])

    @classmethod
    def generate(cls, params: TFHEParameters, rng: np.random.Generator) -> "LweSecretKey":
        """Sample a fresh binary key of dimension ``n``."""
        return cls(rng.integers(0, 2, size=params.n, dtype=np.int64), params)

    def encrypt(
        self, value: int, rng: np.random.Generator, noise_std: float | None = None
    ) -> LweCiphertext:
        """Encrypt a torus value under this key."""
        return LweCiphertext.encrypt(value, self.bits, self.params, rng, noise_std)

    def decrypt_phase(self, ciphertext: LweCiphertext) -> int:
        """Return the noisy phase of a ciphertext encrypted under this key."""
        return ciphertext.phase(self.bits)


@dataclass
class GlweSecretKey:
    """GLWE secret key: ``k`` binary polynomials of degree ``N``."""

    polynomials: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        self.polynomials = np.asarray(self.polynomials, dtype=np.int64)
        expected = (self.params.k, self.params.N)
        if self.polynomials.shape != expected:
            raise ValueError(f"GLWE key must have shape {expected}, got {self.polynomials.shape}")
        if not np.all((self.polynomials == 0) | (self.polynomials == 1)):
            raise ValueError("GLWE secret key must be binary")

    @classmethod
    def generate(cls, params: TFHEParameters, rng: np.random.Generator) -> "GlweSecretKey":
        """Sample fresh binary key polynomials."""
        return cls(rng.integers(0, 2, size=(params.k, params.N), dtype=np.int64), params)

    def extracted_lwe_key(self) -> np.ndarray:
        """Flatten the key into the LWE key of dimension ``k*N``.

        Sample extraction of a GLWE ciphertext produces an LWE ciphertext
        valid under this flattened key.
        """
        return self.polynomials.reshape(-1)


@dataclass
class BootstrappingKey:
    """Fourier-domain bootstrapping key: one GGSW per LWE secret bit."""

    ggsw_list: list[FourierGgswCiphertext]
    params: TFHEParameters

    def __len__(self) -> int:
        return len(self.ggsw_list)

    def __getitem__(self, index: int) -> FourierGgswCiphertext:
        return self.ggsw_list[index]

    @classmethod
    def generate(
        cls,
        lwe_key: LweSecretKey,
        glwe_key: GlweSecretKey,
        rng: np.random.Generator,
        noise_std: float | None = None,
    ) -> "BootstrappingKey":
        """Encrypt every LWE secret bit as a GGSW under the GLWE key."""
        params = lwe_key.params
        ggsw_list = []
        for bit in lwe_key.bits:
            ggsw = GgswCiphertext.encrypt(int(bit), glwe_key.polynomials, params, rng, noise_std)
            ggsw_list.append(ggsw.to_fourier())
        return cls(ggsw_list, params)

    @property
    def size_bytes(self) -> int:
        """Size of the key in the Fourier-domain storage format."""
        return self.params.bootstrapping_key_fourier_bytes


@dataclass
class KeySwitchingKey:
    """Keyswitching key from the extracted GLWE key back to the LWE key.

    ``ciphertexts`` has shape ``(k*N, lk, n+1)``: for input coefficient ``j``
    and level ``l`` it stores an LWE encryption (mask ++ body) of
    ``s'_j * q / Bk^(l+1)`` under the output key.
    """

    ciphertexts: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        expected = (
            self.params.k * self.params.N,
            self.params.lk,
            self.params.n + 1,
        )
        self.ciphertexts = np.asarray(self.ciphertexts, dtype=np.int64)
        if self.ciphertexts.shape != expected:
            raise ValueError(
                f"keyswitching key must have shape {expected}, got {self.ciphertexts.shape}"
            )

    @classmethod
    def generate(
        cls,
        glwe_key: GlweSecretKey,
        lwe_key: LweSecretKey,
        rng: np.random.Generator,
        noise_std: float | None = None,
    ) -> "KeySwitchingKey":
        """Build the keyswitching key from ``glwe_key`` (input) to ``lwe_key``."""
        params = lwe_key.params
        q = params.q
        std = params.lwe_noise_std if noise_std is None else noise_std
        input_key = glwe_key.extracted_lwe_key()
        input_dim = input_key.shape[0]
        table = np.zeros((input_dim, params.lk, params.n + 1), dtype=np.int64)
        for j in range(input_dim):
            bit = int(input_key[j])
            for level in range(params.lk):
                scale = q >> ((level + 1) * params.log2_base_ks)
                ct = LweCiphertext.encrypt(bit * scale, lwe_key.bits, params, rng, std)
                table[j, level, : params.n] = ct.mask
                table[j, level, params.n] = ct.body
        return cls(table, params)

    @property
    def size_bytes(self) -> int:
        """Size of the key in bytes (32-bit coefficients)."""
        return int(self.ciphertexts.size) * (self.params.q_bits // 8)
