"""Fig. 1 reproduction: CPU workload breakdown of a TFHE gate.

The paper profiles one gate bootstrap on a single CPU core and reports three
nested breakdowns: the gate (PBS / keyswitch / other), PBS itself (blind
rotation vs the rest) and one blind-rotation iteration (rotate, decompose,
FFT, vector multiply, accumulate + IFFT).  We obtain the same three
breakdowns from the operation-count CPU model, which is in turn derived from
the exact operation sequence of our functional TFHE implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.cpu_model import ConcreteCpuModel
from repro.params import PARAM_SET_I, TFHEParameters


@dataclass(frozen=True)
class BreakdownReport:
    """The three nested breakdowns of Fig. 1 (shares sum to 1.0 each)."""

    parameter_set: str
    gate_shares: dict[str, float]
    pbs_shares: dict[str, float]
    blind_rotation_shares: dict[str, float]

    def render(self) -> str:
        """Human readable rendering of the three stacked bars."""
        lines = [f"TFHE gate workload breakdown on CPU (parameter set {self.parameter_set})"]
        for title, shares in (
            ("Gate execution", self.gate_shares),
            ("PBS", self.pbs_shares),
            ("Blind-rotation iteration", self.blind_rotation_shares),
        ):
            lines.append(f"  {title}:")
            for name, share in sorted(shares.items(), key=lambda item: -item[1]):
                bar = "#" * max(int(share * 40), 1)
                lines.append(f"    {name:<18} {share:6.1%} {bar}")
        return "\n".join(lines)


def cpu_workload_breakdown(
    params: TFHEParameters = PARAM_SET_I, threads: int = 1
) -> BreakdownReport:
    """Compute the Fig. 1 breakdown for a parameter set."""
    model = ConcreteCpuModel(threads=threads)
    breakdown = model.workload_breakdown(params)
    return BreakdownReport(
        parameter_set=params.name,
        gate_shares=breakdown.gate_shares,
        pbs_shares=breakdown.pbs_shares,
        blind_rotation_shares=breakdown.blind_rotation_shares,
    )
