"""``python -m repro.apps.netload`` — drive the TCP front-end with real traffic.

The command-line face of :mod:`repro.net.loadgen`: generate a
:mod:`repro.apps.traffic` trace, push it through a loopback
:class:`~repro.net.server.NetServer`, print the serving report (wire line
included).

Two modes::

    # deterministic replay (bit-for-bit with the in-process simulation)
    PYTHONPATH=src python -m repro.apps.netload --mode replay --pattern bursty

    # live closed loop over 8 connections
    PYTHONPATH=src python -m repro.apps.netload --mode live --connections 8

``--smoke`` shrinks everything to a sub-second run and additionally verifies
replay-vs-simulate equality — the loopback check CI executes on every push.

``--json`` swaps the human-readable report for one machine-readable JSON
object (trace shape, serving metrics, wire RTT/throughput) on stdout;
``--trace-out``/``--chrome-out`` enable request tracing and dump the span
timeline as JSONL / Chrome ``trace_event`` JSON (load the latter in
``chrome://tracing`` or Perfetto).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.apps.traffic import TRAFFIC_PATTERNS
from repro.net.loadgen import closed_loop, replay_trace
from repro.obs import write_chrome_trace, write_jsonl
from repro.serve.server import Server


def build_parser() -> argparse.ArgumentParser:
    """The netload command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro.apps.netload",
        description="Drive the repro.net TCP front-end with generated traffic.",
    )
    parser.add_argument(
        "--mode",
        choices=("replay", "live"),
        default="replay",
        help="deterministic trace replay or live closed-loop traffic",
    )
    parser.add_argument(
        "--pattern",
        choices=sorted(TRAFFIC_PATTERNS),
        default="steady",
        help="traffic pattern generating the trace",
    )
    parser.add_argument("--rate", type=float, default=2000.0, help="arrival rate (req/s)")
    parser.add_argument("--duration", type=float, default=0.25, help="trace duration (s)")
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument("--tenants", type=int, default=4, help="tenant count")
    parser.add_argument("--devices", type=int, default=4, help="accelerator devices")
    parser.add_argument("--params", default="I", help="TFHE parameter set")
    parser.add_argument(
        "--connections",
        type=int,
        default=4,
        help="concurrent client connections (live mode)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="sub-second run that also checks replay equality (CI loopback test)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print one machine-readable JSON summary instead of the report",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help="enable request tracing and write the span timeline as JSONL",
    )
    parser.add_argument(
        "--chrome-out",
        metavar="PATH",
        help="enable request tracing and write a Chrome trace_event JSON file",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.smoke:
        args.rate, args.duration, args.tenants = 800.0, 0.1, 3
    # The patterns agree on (rate, duration) positionally; the first
    # keyword differs (rate_rps vs burst_rate_rps), hence positional here.
    trace = TRAFFIC_PATTERNS[args.pattern](
        args.rate, args.duration, seed=args.seed, tenants=args.tenants
    )
    if not args.json:
        print(
            f"trace: {len(trace)} requests ({args.pattern}, {args.rate:g} req/s "
            f"for {args.duration:g} s, seed {args.seed})"
        )
    tracing = args.trace_out is not None or args.chrome_out is not None
    server = Server(devices=args.devices, params=args.params)
    tracer = server.enable_tracing() if tracing else None
    if args.mode == "replay":
        report = replay_trace(trace, server=server, label="net-replay")
    else:
        report = closed_loop(
            trace, connections=args.connections, server=server, label="net-live"
        )
    if args.json:
        summary = {
            "trace": {
                "pattern": args.pattern,
                "requests": len(trace),
                "rate_rps": args.rate,
                "duration_s": args.duration,
                "seed": args.seed,
                "tenants": args.tenants,
            },
            "mode": args.mode,
            "report": report.to_dict(),
        }
        print(json.dumps(summary, sort_keys=True, indent=2))
    else:
        print(report.render())
    if tracer is not None:
        spans = tracer.spans()
        if args.trace_out is not None:
            count = write_jsonl(spans, args.trace_out)
            if not args.json:
                print(f"wrote {count} spans to {args.trace_out}")
        if args.chrome_out is not None:
            events = write_chrome_trace(spans, args.chrome_out)
            if not args.json:
                print(f"wrote {events} trace events to {args.chrome_out}")
    if args.smoke and args.mode == "replay":
        reference = Server(devices=args.devices, params=args.params).simulate(
            list(trace), label="net-replay"
        )
        if report.outcomes != reference.outcomes:
            print("SMOKE FAILED: wire replay diverged from in-process simulation")
            return 1
        if not args.json:
            print(
                f"smoke OK: {len(report.outcomes)} wire outcomes == in-process simulation"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
