"""Strix architecture model.

Cycle-level timing, bandwidth, area and power models of the Strix
accelerator (Sections IV–V of the paper): the four-level parallelism
configuration, the five specialized functional units, the Homomorphic
Streaming Core (HSC) with its six-stage PBS pipeline and keyswitch cluster,
the two-level scratchpad hierarchy with a multicast NoC, and the HBM
interface.  The top-level :class:`repro.arch.accelerator.StrixAccelerator`
combines these into latency / throughput / bandwidth estimates for any TFHE
parameter set, and drives the discrete-event simulation in :mod:`repro.sim`.
"""

from repro.arch.config import (
    CLUSTER_DEFAULT,
    STRIX_DEFAULT,
    STRIX_UNFOLDED,
    StrixClusterConfig,
    StrixConfig,
)
from repro.arch.accelerator import StrixAccelerator, PbsPerformance
from repro.arch.area_power import AreaPowerModel
from repro.arch.interconnect import InterconnectModel
from repro.arch.key_cache import (
    DeviceKeyCache,
    KeyCacheStats,
    KeyEvictionPolicy,
    KeyResidencyManager,
    LFUEvictionPolicy,
    LRUEvictionPolicy,
    PinnedTenantPolicy,
    get_key_policy,
    hbm_key_budget_bytes,
    list_key_policies,
)

__all__ = [
    "StrixConfig",
    "StrixClusterConfig",
    "CLUSTER_DEFAULT",
    "STRIX_DEFAULT",
    "STRIX_UNFOLDED",
    "StrixAccelerator",
    "PbsPerformance",
    "AreaPowerModel",
    "InterconnectModel",
    "DeviceKeyCache",
    "KeyCacheStats",
    "KeyEvictionPolicy",
    "KeyResidencyManager",
    "LFUEvictionPolicy",
    "LRUEvictionPolicy",
    "PinnedTenantPolicy",
    "get_key_policy",
    "hbm_key_budget_bytes",
    "list_key_policies",
]
