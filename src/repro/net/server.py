"""The asyncio TCP front-end: :class:`NetServer` turns the serving layer into a server.

One :class:`NetServer` owns one :class:`repro.serve.Server` and exposes it
over real sockets speaking the :mod:`repro.net.protocol` frame format.  Two
modes:

* ``mode="live"`` — the online path: every ``SUBMIT`` goes through
  :meth:`repro.serve.Server.submit_async`, so arrivals are stamped on the
  wall clock, batches flush on real deadlines, and each connection receives
  its ``RESULT`` frames as its batches complete.  This is what a deployment
  looks like: N concurrent connections feeding one adaptive batcher.
* ``mode="replay"`` — the deterministic path: ``SUBMIT`` frames carry trace
  timestamps and feed the incremental replay
  (:meth:`repro.serve.Server.replay_offer`), so a recorded trace pushed
  through the socket produces *bit-for-bit* the outcomes the in-process
  :meth:`~repro.serve.Server.simulate` produces — the equality the test
  suite enforces.  ``DRAIN`` flushes everything still batched and answers
  ``DRAINED`` when the last ``RESULT`` is out.

Error handling is connection-scoped and typed: a corrupted checksum, an
unsupported protocol version, an unknown message type or a malformed payload
each earn an ``ERROR`` reply naming its :class:`~repro.net.protocol.ErrorCode`
— and the server keeps serving.  Only defects that desynchronize the byte
stream (bad magic, an unbelievable length, a frame cut off by EOF) close
that one connection, after a final ``ERROR`` so the client knows why.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, replace
from typing import Any

from repro.flow.control import DeadlineExceededError, RequestRejectedError
from repro.net import codec, protocol
from repro.net.protocol import ErrorCode, Frame, FrameDecoder, MessageType, ProtocolError
from repro.serve.request import Request
from repro.serve.server import ServeReport, Server

#: Bytes per read of the per-connection read loop.
_READ_CHUNK = 64 * 1024


@dataclass
class WireStats:
    """Transport counters one :class:`NetServer` accumulates."""

    connections: int = 0
    frames_received: int = 0
    frames_sent: int = 0
    bytes_received: int = 0
    bytes_sent: int = 0
    errors_sent: int = 0
    busy_sent: int = 0

    def to_dict(self) -> dict[str, int]:
        """JSON-friendly snapshot (merged into :attr:`ServeReport.wire`).

        ``busy_sent`` only appears once a BUSY reply has actually gone out,
        so overload-free runs keep their historical wire dict unchanged.
        """
        snapshot = {
            "connections": self.connections,
            "frames_received": self.frames_received,
            "frames_sent": self.frames_sent,
            "bytes_received": self.bytes_received,
            "bytes_sent": self.bytes_sent,
            "errors_sent": self.errors_sent,
        }
        if self.busy_sent:
            snapshot["busy_sent"] = self.busy_sent
        return snapshot


class _Connection:
    """Per-connection state: decoder, write lock, liveness, credits."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.decoder = FrameDecoder()
        self.lock = asyncio.Lock()
        self.closing = False
        #: Live-mode submissions accepted but not yet answered (credit-based
        #: flow control counts replies out against the WELCOME's window).
        self.inflight = 0


class NetServer:
    """Serve one :class:`repro.serve.Server` over loopback (or any) TCP.

    Usage::

        async with NetServer(Server(devices=4), mode="live") as net:
            host, port = net.address
            ...  # connect clients

    ``start``/``aclose`` are also usable directly.  After close,
    :attr:`last_report` holds the serving report of everything the socket
    carried — the async report in live mode, the deterministic replay
    report in replay mode — with :attr:`ServeReport.wire` filled in from
    the transport counters.
    """

    def __init__(
        self,
        server: Server | None = None,
        mode: str = "live",
        host: str = "127.0.0.1",
        port: int = 0,
        label: str | None = None,
        credit_window: int | None = None,
        **server_options: Any,
    ):
        if mode not in ("live", "replay"):
            raise ValueError(f"unknown NetServer mode {mode!r}; choose 'live' or 'replay'")
        if server is not None and server_options:
            raise ValueError("pass either a Server instance or ServeConfig overrides, not both")
        if credit_window is not None and not 1 <= credit_window <= 0xFFFF:
            raise ValueError("credit window must be in [1, 65535]")
        self.server = server if server is not None else Server(**server_options)
        self.mode = mode
        #: Per-connection in-flight window advertised in WELCOME; enforced
        #: on the live path (a SUBMIT past it earns an immediate BUSY).
        #: ``None`` keeps the historical one-byte WELCOME and no limit.
        self.credit_window = credit_window
        self.label = label if label is not None else f"net-{mode}"
        self._host = host
        self._port = port
        self._listener: asyncio.base_events.Server | None = None
        self._connections: set[_Connection] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._submit_tasks: set[asyncio.Task] = set()
        self._epoch = 0.0
        self._entered_live = False
        self._replay_open = False
        #: Shed/expired requests the serving core dropped during the replay
        #: offer being processed — collected by the server's ``drop_hook``
        #: (a synchronous callback) and flushed as BUSY frames right after,
        #: so a client awaiting a dropped request gets an answer, not a hang.
        self._replay_drops: list[tuple[Request, str]] = []
        #: Replay request id -> the connection that submitted it.  A later
        #: connection's offer can release another connection's outcomes
        #: (or shed its queued work); replies must reach the submitter,
        #: not whoever's offer triggered them.  Entries are forgotten as
        #: they are answered.
        self._replay_owners: dict[int, _Connection] = {}
        self.stats = WireStats()
        #: Serving report of the last completed serve (set by :meth:`aclose`).
        self.last_report: ServeReport | None = None
        #: Snapshot served by the most recent STATS scrape — stashed *before*
        #: the reply frame is counted, so a test can compare the scraped dict
        #: against exactly what the registry held at scrape time.
        self.last_stats: dict[str, float] | None = None
        # The transport's counters join the serving registry as a live view
        # (re-registering replaces an earlier NetServer's view on the same
        # Server), so a STATS scrape sees wire traffic next to serving state.
        self.server.registry.register_view(
            "wire", self.stats.to_dict, "Transport frame/byte counters"
        )

    # -- lifecycle ---------------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """``(host, port)`` the listener is bound to (after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("the server is not started")
        return self._listener.sockets[0].getsockname()[:2]

    async def start(self) -> tuple[str, int]:
        """Bind, start accepting, and arm the serving core; returns the address."""
        if self._listener is not None:
            raise RuntimeError("the server is already started")
        loop = asyncio.get_running_loop()
        self._epoch = loop.time()
        if self.mode == "live":
            await self.server.__aenter__()
            self._entered_live = True
        else:
            self.server.replay_begin()
            self._replay_open = True
            self.server.drop_hook = self._on_replay_drop
        self._listener = await asyncio.start_server(self._on_connection, self._host, self._port)
        return self.address

    async def __aenter__(self) -> "NetServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Graceful shutdown: stop accepting, drain, answer, disconnect."""
        if self._listener is None:
            return
        self._listener.close()
        await self._listener.wait_closed()
        self._listener = None
        wire = None
        if self._entered_live:
            # Exiting the async context drains the batcher, which resolves
            # every pending submission future; the per-submit tasks then
            # write their RESULT frames before we cut the connections.
            await self.server.__aexit__(None, None, None)
            self._entered_live = False
            if self._submit_tasks:
                await asyncio.gather(*list(self._submit_tasks), return_exceptions=True)
            base = self.server.last_async_report
            if base is not None:
                wire = {**base.wire, **self.stats.to_dict()}
                self.last_report = replace(base, label=self.label, wire=wire)
        if self._replay_open:
            self._replay_open = False
            self.server.drop_hook = None
            self.last_report = self.server.replay_finish(
                label=self.label, wire=self.stats.to_dict()
            )
        for connection in list(self._connections):
            connection.closing = True
            connection.writer.close()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._connections.clear()

    # -- connection handling -----------------------------------------------------

    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        connection = _Connection(writer)
        self._connections.add(connection)
        self.stats.connections += 1
        task = asyncio.get_running_loop().create_task(self._read_loop(reader, connection))
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _read_loop(self, reader: asyncio.StreamReader, connection: _Connection) -> None:
        try:
            while True:
                data = await reader.read(_READ_CHUNK)
                if not data:
                    defect = connection.decoder.at_eof()
                    if defect is not None:
                        # The write half usually survives a client's
                        # write-side EOF, so the truncation still gets its
                        # typed reply before the connection goes away.
                        await self._send_error(connection, defect)
                    break
                self.stats.bytes_received += len(data)
                for event in connection.decoder.feed(data):
                    if isinstance(event, ProtocolError):
                        await self._send_error(connection, event)
                        if event.fatal:
                            return
                    else:
                        self.stats.frames_received += 1
                        await self._handle_frame(connection, event)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            connection.writer.close()
            try:
                await connection.writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # -- frame dispatch ----------------------------------------------------------

    async def _handle_frame(self, connection: _Connection, frame: Frame) -> None:
        try:
            msg_type = MessageType(frame.msg_type)
        except ValueError:
            await self._send_error(
                connection,
                ProtocolError(
                    ErrorCode.UNKNOWN_TYPE,
                    f"unknown message type {frame.msg_type}",
                ),
            )
            return
        try:
            if msg_type is MessageType.HELLO:
                await self._handle_hello(connection, frame)
            elif msg_type is MessageType.PING:
                await self._handle_ping(connection, frame)
            elif msg_type is MessageType.SUBMIT:
                await self._handle_submit(connection, frame)
            elif msg_type is MessageType.DRAIN:
                await self._handle_drain(connection)
            elif msg_type is MessageType.STATS:
                await self._handle_stats(connection)
            else:
                await self._send_error(
                    connection,
                    ProtocolError(
                        ErrorCode.UNKNOWN_TYPE,
                        f"{msg_type.name} frames are not valid client->server messages",
                    ),
                )
        except (ValueError, KeyError) as error:
            # KeyError covers unknown Deep-NN model names from the PBS cost
            # lookup; both are the client's mistake, not the server's.
            await self._send_error(connection, ProtocolError(ErrorCode.BAD_MESSAGE, str(error)))

    async def _handle_hello(self, connection: _Connection, frame: Frame) -> None:
        offered = protocol.decode_hello(frame.payload)
        version = protocol.negotiate_version(offered)
        if version is None:
            await self._send_error(
                connection,
                ProtocolError(
                    ErrorCode.UNSUPPORTED_VERSION,
                    f"no common protocol version (client offered {sorted(offered)}, "
                    f"server supports {sorted(protocol.SUPPORTED_VERSIONS)})",
                ),
            )
            return
        await self._send(
            connection,
            MessageType.WELCOME,
            protocol.encode_welcome(version, credit_window=self.credit_window),
        )

    async def _handle_ping(self, connection: _Connection, frame: Frame) -> None:
        nonce, client_s = protocol.decode_ping(frame.payload)
        server_s = asyncio.get_running_loop().time() - self._epoch
        await self._send(
            connection, MessageType.PONG, protocol.encode_pong(nonce, client_s, server_s)
        )

    async def _handle_submit(self, connection: _Connection, frame: Frame) -> None:
        message = codec.decode_submit(frame.payload)
        if message.ciphertexts is not None:
            # Validate the attached LWE batch before accepting the work;
            # a corrupt or params-mismatched batch is the client's error.
            message.decode_ciphertexts(self.server.params)
        if self.mode == "replay":
            if message.arrival_s is None:
                raise ValueError("replay-mode SUBMIT frames must carry a trace timestamp")
            self._replay_owners[message.request_id] = connection
            try:
                outcomes = self.server.replay_offer(message.to_request())
            except RequestRejectedError as rejected:
                self._replay_owners.pop(message.request_id, None)
                await self._send_busy(
                    connection, message.request_id, rejected.retry_after_s, str(rejected)
                )
                outcomes = []
            for outcome in outcomes:
                request_id = outcome.request.request_id
                await self._send_result(
                    self._replay_owner(request_id, connection), request_id, outcome
                )
            await self._flush_replay_drops(connection)
        else:
            if (
                self.credit_window is not None
                and connection.inflight >= self.credit_window
            ):
                # The connection spent its whole advertised window; answer
                # immediately with a deterministic retry hint instead of
                # queueing past capacity.
                await self._send_busy(
                    connection,
                    message.request_id,
                    self.server.flow.retry_after_s(
                        self.server.queue, self.server.config.max_batch_delay_s
                    ),
                    f"in-flight window of {self.credit_window} is exhausted",
                )
                return
            connection.inflight += 1
            task = asyncio.get_running_loop().create_task(self._submit_live(connection, message))
            self._submit_tasks.add(task)
            task.add_done_callback(self._submit_tasks.discard)

    async def _submit_live(self, connection: _Connection, message: codec.SubmitMessage) -> None:
        try:
            outcome = await self.server.submit_async(
                message.tenant,
                message.kind,
                message.items,
                model=message.model,
                deadline_s=message.deadline_s,
            )
        except RequestRejectedError as rejected:
            connection.inflight -= 1
            await self._send_busy(
                connection, message.request_id, rejected.retry_after_s, str(rejected)
            )
            return
        except DeadlineExceededError as expired:
            connection.inflight -= 1
            await self._send_error(
                connection,
                ProtocolError(ErrorCode.DEADLINE_EXCEEDED, str(expired)),
                request_id=message.request_id,
            )
            return
        except Exception as error:  # noqa: BLE001 - surfaced as a typed reply
            connection.inflight -= 1
            await self._send_error(
                connection,
                ProtocolError(ErrorCode.SERVER_ERROR, str(error)),
                request_id=message.request_id,
            )
            return
        # Decrement before computing the piggy-backed credit count so the
        # RESULT advertises the capacity this very reply just freed.
        connection.inflight -= 1
        credits = None
        if self.credit_window is not None:
            credits = max(self.credit_window - connection.inflight, 0)
        await self._send_result(connection, message.request_id, outcome, credits=credits)

    async def _handle_drain(self, connection: _Connection) -> None:
        if self.mode == "replay":
            for outcome in self.server.replay_drain():
                request_id = outcome.request.request_id
                await self._send_result(
                    self._replay_owner(request_id, connection), request_id, outcome
                )
            await self._flush_replay_drops(connection)
        await self._send(connection, MessageType.DRAINED, b"")

    async def _handle_stats(self, connection: _Connection) -> None:
        """Scrape the serving registry (including this transport's view).

        When the server runs under a fault schedule the snapshot carries
        the ``serve_faults_*`` gauges (deaths applied, requests lost /
        retried, throttle seconds...), so a remote scraper sees degraded-
        mode state without a new frame type; fault-free servers emit no
        such gauges and the STATS payload is unchanged.
        """
        snapshot = self.server.metrics()
        self.last_stats = snapshot
        await self._send(connection, MessageType.STATS_REPLY, protocol.encode_stats(snapshot))

    # -- replies -----------------------------------------------------------------

    def _replay_owner(self, request_id: int, fallback: _Connection) -> _Connection:
        """The connection that submitted ``request_id`` (forgotten once used).

        ``fallback`` covers requests that never went through a SUBMIT frame
        on this server (there are none today, but an unknown id must not
        crash the read loop).
        """
        return self._replay_owners.pop(request_id, fallback)

    def _on_replay_drop(self, request: Request, reason: str) -> None:
        """Collect a shed/expired replay request for a typed reply.

        The serving core drops synchronously inside ``replay_offer`` /
        ``replay_drain``; the frames go out right after, once the event
        loop is back in the handler's async context.
        """
        self._replay_drops.append((request, reason))

    async def _flush_replay_drops(self, connection: _Connection) -> None:
        """Answer every request the replay step just shed or expired.

        Shed work earns a BUSY (with the controller's retry hint); expired
        work earns a typed DEADLINE_EXCEEDED error — the same split the
        live path's :meth:`_submit_live` produces, so a client sees one
        vocabulary across both modes and never hangs on dropped work.
        Each reply goes to the connection that *submitted* the victim —
        a shed victim's offer may have come down a different connection
        than the offer that triggered the shed.
        """
        if not self._replay_drops:
            return
        drops, self._replay_drops = self._replay_drops, []
        for request, reason in drops:
            owner = self._replay_owner(request.request_id, connection)
            if reason == "expired":
                await self._send_error(
                    owner,
                    ProtocolError(
                        ErrorCode.DEADLINE_EXCEEDED,
                        f"request {request.request_id} missed its deadline before dispatch",
                    ),
                    request_id=request.request_id,
                )
            else:
                await self._send_busy(
                    owner,
                    request.request_id,
                    self.server.flow.retry_after_s(
                        self.server.queue, self.server.config.max_batch_delay_s
                    ),
                    f"request {request.request_id} was {reason} to admit newer work",
                )

    async def _send_busy(
        self, connection: _Connection, request_id: int, retry_after_s: float, reason: str
    ) -> None:
        self.stats.busy_sent += 1
        self.server.flow.note_busy_reply()
        await self._send(
            connection,
            MessageType.BUSY,
            protocol.encode_busy(request_id, retry_after_s, reason),
        )

    async def _send_result(
        self,
        connection: _Connection,
        request_id: int,
        outcome,
        credits: int | None = None,
    ) -> None:
        payload = codec.encode_result(
            request_id,
            outcome.batch_id,
            outcome.device,
            outcome.request.arrival_s,
            outcome.dispatched_s,
            outcome.completed_s,
            credits=credits,
        )
        await self._send(connection, MessageType.RESULT, payload)
        tracer = self.server.tracer
        if tracer is not None:
            # Keyed on the *server-side* request id (live-mode clients
            # number their own); replay stamps the simulated completion so
            # deterministic traces keep deterministic spans, live stamps
            # the wall clock the rest of the async span already uses.
            if self.mode == "replay":
                reply_s = outcome.completed_s
            else:
                reply_s = asyncio.get_running_loop().time() - self.server._async_epoch
            tracer.on_reply(outcome.request.request_id, reply_s)

    async def _send_error(
        self, connection: _Connection, defect: ProtocolError, request_id: int = 0
    ) -> None:
        payload = protocol.encode_error(defect.code, defect.message, request_id)
        self.stats.errors_sent += 1
        await self._send(connection, MessageType.ERROR, payload)

    async def _send(self, connection: _Connection, msg_type: MessageType, payload: bytes) -> None:
        if connection.closing:
            return
        data = protocol.encode_frame(msg_type, payload)
        try:
            async with connection.lock:
                connection.writer.write(data)
                await connection.writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError):
            connection.closing = True
            return
        self.stats.frames_sent += 1
        self.stats.bytes_sent += len(data)
