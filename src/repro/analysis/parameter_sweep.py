"""Sensitivity of Strix performance to the TFHE parameters.

Table V fixes four parameter sets; this study varies the two parameters that
dominate the datapath — the polynomial degree ``N`` and the decomposition
level ``lb`` — and reports throughput, latency and bandwidth demand, making
the scaling behaviour behind the streaming model explicit:

* throughput scales as ``1 / (n * ceil((k+1)*lb / PLP) * N)``;
* the bootstrapping-key fetch per iteration scales as ``(k+1)^2 * lb * N/2``,
  so large-``N`` / large-``lb`` points drift towards the memory-bound regime.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.params import PARAM_SET_I, TFHEParameters


@dataclass(frozen=True)
class SweepPoint:
    """Strix performance at one TFHE parameter point."""

    polynomial_degree: int
    decomposition_levels: int
    throughput_pbs_per_s: float
    latency_ms: float
    required_bandwidth_gbps: float
    core_batch: int


@dataclass(frozen=True)
class ParameterSweep:
    """The full (N, lb) sweep."""

    base_set: str
    points: list[SweepPoint]

    def by_degree(self, degree: int) -> list[SweepPoint]:
        """All points with a given polynomial degree."""
        return [point for point in self.points if point.polynomial_degree == degree]

    def render(self) -> str:
        """Render the sweep as text."""
        lines = [f"Strix sensitivity to TFHE parameters (based on set {self.base_set})"]
        lines.append(
            f"  {'N':>6} {'lb':>3} {'throughput (PBS/s)':>20} {'latency (ms)':>13} "
            f"{'req. BW (GB/s)':>15} {'core batch':>11}"
        )
        for point in self.points:
            lines.append(
                f"  {point.polynomial_degree:>6} {point.decomposition_levels:>3} "
                f"{point.throughput_pbs_per_s:>20,.0f} {point.latency_ms:>13.2f} "
                f"{point.required_bandwidth_gbps:>15.0f} {point.core_batch:>11}"
            )
        return "\n".join(lines)


def parameter_sweep(
    base: TFHEParameters = PARAM_SET_I,
    degrees: list[int] | None = None,
    levels: list[int] | None = None,
    accelerator: StrixAccelerator | None = None,
) -> ParameterSweep:
    """Sweep the polynomial degree and decomposition level on the Strix model."""
    accelerator = accelerator or StrixAccelerator()
    degrees = degrees or [1024, 2048, 4096, 8192, 16384]
    levels = levels or [2, 3, 4]
    points = []
    for degree in degrees:
        for lb in levels:
            params = dataclasses.replace(
                base, name=f"{base.name}-N{degree}-lb{lb}", N=degree, lb=lb
            )
            performance = accelerator.pbs_performance(params)
            points.append(
                SweepPoint(
                    polynomial_degree=degree,
                    decomposition_levels=lb,
                    throughput_pbs_per_s=performance.throughput_pbs_per_s,
                    latency_ms=performance.latency_ms,
                    required_bandwidth_gbps=performance.required_bandwidth_gbps,
                    core_batch=performance.core_batch_size,
                )
            )
    return ParameterSweep(base_set=base.name, points=points)
