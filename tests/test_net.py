"""Tests for repro.net: framing, payload codecs, and the loopback TCP front-end.

Three layers of coverage, mirroring the module's own layering:

* pure framing — :class:`FrameDecoder` over crafted byte streams, every
  defect class (bad magic, oversized length, checksum miss, unsupported
  version, truncation) and the fatal/frame-local split;
* payload codecs — SUBMIT/RESULT round trips (property-tested), malformed
  payload rejection, control messages;
* real sockets — the acceptance criteria of the front-end: a trace replayed
  over loopback TCP is **bit-for-bit** the in-process simulation, corrupt
  frames earn typed ``ERROR`` replies while the server keeps serving, live
  mode serves concurrent connections with measured round trips.
"""

from __future__ import annotations

import asyncio
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.traffic import bursty_trace, steady_trace
from repro.net import codec, protocol
from repro.net.client import AsyncNetClient, NetClient, NetError
from repro.net.loadgen import closed_loop, replay_trace
from repro.net.protocol import (
    HEADER,
    MAGIC,
    PROTOCOL_VERSION,
    ErrorCode,
    Frame,
    FrameDecoder,
    MessageType,
    ProtocolError,
    encode_frame,
)
from repro.net.server import NetServer
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.serve.request import Request
from repro.serve.server import Server
from repro.tfhe.lwe import LweCiphertext
from repro.tfhe.serialization import lwe_to_bytes


# -- pure framing -------------------------------------------------------------------


class TestFraming:
    def test_frame_roundtrip(self):
        data = encode_frame(MessageType.SUBMIT, b"payload")
        decoder = FrameDecoder()
        (frame,) = decoder.feed(data)
        assert isinstance(frame, Frame)
        assert frame.msg_type == MessageType.SUBMIT
        assert frame.payload == b"payload"
        assert frame.version == PROTOCOL_VERSION
        assert decoder.pending_bytes == 0

    @given(
        payloads=st.lists(st.binary(max_size=200), min_size=1, max_size=8),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_feed_reassembles_every_frame(self, payloads, chunk):
        stream = b"".join(encode_frame(MessageType.PING, p) for p in payloads)
        decoder = FrameDecoder()
        frames = []
        for start in range(0, len(stream), chunk):
            frames.extend(decoder.feed(stream[start : start + chunk]))
        assert [f.payload for f in frames] == payloads
        assert decoder.at_eof() is None

    def test_bad_magic_is_fatal(self):
        good = encode_frame(MessageType.PING, b"x")
        decoder = FrameDecoder()
        (defect,) = decoder.feed(b"XXXX" + good[4:])
        assert isinstance(defect, ProtocolError)
        assert defect.code == ErrorCode.BAD_MAGIC and defect.fatal
        # A dead decoder refuses everything after desynchronization.
        assert decoder.feed(good) == []
        assert decoder.at_eof() is None

    def test_oversized_declared_length_is_fatal(self):
        header = HEADER.pack(MAGIC, PROTOCOL_VERSION, 1, 0, protocol.MAX_PAYLOAD_BYTES + 1, 0)
        (defect,) = FrameDecoder().feed(header)
        assert defect.code == ErrorCode.FRAME_TOO_LARGE and defect.fatal

    def test_checksum_miss_is_frame_local(self):
        bad = bytearray(encode_frame(MessageType.PING, b"abcdef"))
        bad[-1] ^= 0xFF
        follow = encode_frame(MessageType.PING, b"ok")
        decoder = FrameDecoder()
        defect, frame = decoder.feed(bytes(bad) + follow)
        assert defect.code == ErrorCode.BAD_CHECKSUM and not defect.fatal
        assert frame.payload == b"ok"

    def test_unsupported_version_is_frame_local(self):
        old = encode_frame(MessageType.PING, b"x", version=9)
        follow = encode_frame(MessageType.PING, b"ok")
        defect, frame = FrameDecoder().feed(old + follow)
        assert defect.code == ErrorCode.UNSUPPORTED_VERSION and not defect.fatal
        assert frame.payload == b"ok"

    def test_eof_mid_frame_is_truncation(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(MessageType.PING, b"abc")[:10]) == []
        defect = decoder.at_eof()
        assert defect is not None and defect.code == ErrorCode.TRUNCATED

    def test_oversized_payload_refused_at_encode(self):
        with pytest.raises(ValueError, match="frame cap"):
            encode_frame(MessageType.SUBMIT, b"\x00" * (protocol.MAX_PAYLOAD_BYTES + 1))


# -- control payloads ---------------------------------------------------------------


class TestControlPayloads:
    def test_hello_welcome_roundtrip(self):
        assert protocol.decode_hello(protocol.encode_hello((1, 3, 2))) == (1, 2, 3)
        welcome = protocol.decode_welcome(protocol.encode_welcome(1))
        assert welcome.version == 1 and welcome.credit_window is None
        # The credit-window form is 2 bytes longer; the bare form stays 1 byte.
        assert len(protocol.encode_welcome(1)) == 1
        windowed = protocol.decode_welcome(protocol.encode_welcome(1, credit_window=32))
        assert windowed.version == 1 and windowed.credit_window == 32
        with pytest.raises(ValueError):
            protocol.encode_hello(())
        with pytest.raises(ValueError):
            protocol.decode_hello(b"\x03\x01")

    def test_version_negotiation(self):
        assert protocol.negotiate_version((1,), frozenset({1, 2})) == 1
        assert protocol.negotiate_version((1, 2), frozenset({1, 2})) == 2
        assert protocol.negotiate_version((3,), frozenset({1, 2})) is None

    def test_error_roundtrip(self):
        reply = protocol.decode_error(
            protocol.encode_error(ErrorCode.BAD_CHECKSUM, "crc mismatch", request_id=7)
        )
        assert reply.code == ErrorCode.BAD_CHECKSUM
        assert reply.request_id == 7
        assert reply.message == "crc mismatch"
        assert reply.code_name == "BAD_CHECKSUM"
        assert protocol.decode_error(protocol.encode_error(200, "?")).code_name == "code-200"

    def test_ping_pong_roundtrip(self):
        assert protocol.decode_ping(protocol.encode_ping(5, 0.25)) == (5, 0.25)
        pong = protocol.decode_pong(protocol.encode_pong(5, 0.25, 0.5))
        assert (pong.nonce, pong.client_s, pong.server_s) == (5, 0.25, 0.5)
        with pytest.raises(ValueError):
            protocol.decode_pong(b"short")

    @given(text=st.text(max_size=120))
    @settings(max_examples=30, deadline=None)
    def test_string_packing_roundtrip(self, text):
        packed = protocol.pack_str(text)
        value, offset = protocol.unpack_str(packed, 0)
        assert value == text and offset == len(packed)


# -- SUBMIT / RESULT codecs ---------------------------------------------------------


class TestSubmitResultCodec:
    @given(
        request_id=st.integers(min_value=1, max_value=2**50),
        tenant=st.text(min_size=1, max_size=20),
        items=st.integers(min_value=1, max_value=10_000),
        arrival=st.one_of(st.none(), st.floats(0.0, 1e6, allow_nan=False)),
        inference=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_submit_roundtrip_property(self, request_id, tenant, items, arrival, inference):
        kind = "inference" if inference else "bootstrap"
        model = "NN-20" if inference else None
        payload = codec.encode_submit(
            request_id, tenant, kind, items, arrival_s=arrival, model=model
        )
        message = codec.decode_submit(payload)
        assert message.request_id == request_id
        assert message.tenant == tenant
        assert (message.kind, message.items, message.model) == (kind, items, model)
        assert message.arrival_s == arrival  # doubles survive bit-exactly

    def test_submit_rebuilds_trace_request_bit_for_bit(self):
        trace = steady_trace(rate_rps=400.0, duration_s=0.05, seed=3)
        for request in trace:
            payload = codec.submit_from_request(request)
            assert codec.decode_submit(payload).to_request() == request

    def test_submit_with_ciphertexts(self):
        batch = [LweCiphertext.trivial(m, 16, PARAM_SET_I) for m in range(3)]
        payload = codec.encode_submit(1, "t0", "bootstrap", 3, ciphertexts=batch)
        message = codec.decode_submit(payload)
        assert message.ciphertexts == lwe_to_bytes(batch)
        decoded = message.decode_ciphertexts(PARAM_SET_I)
        assert [ct.body for ct in decoded] == [0, 1, 2]
        with pytest.raises(ValueError):
            message.decode_ciphertexts(TOY_PARAMETERS)

    def test_submit_rejects_malformed_payloads(self):
        good = codec.encode_submit(1, "t0", "gate", 2)
        with pytest.raises(ValueError, match="truncated"):
            codec.decode_submit(good[:8])
        with pytest.raises(ValueError, match="trailing"):
            codec.decode_submit(good + b"\x00")
        with pytest.raises(ValueError, match="tenant"):
            codec.decode_submit(codec.encode_submit(1, "", "gate", 2))
        carrying = codec.encode_submit(
            1, "t0", "gate", 2, ciphertexts=[LweCiphertext.trivial(0, 4, PARAM_SET_I)]
        )
        with pytest.raises(ValueError, match="truncated"):
            codec.decode_submit(carrying[:-3])

    def test_result_roundtrip_through_outcome(self):
        request = Request.make(9, "t1", "bootstrap", 4, arrival_s=0.125)
        from repro.serve.request import RequestOutcome

        outcome = RequestOutcome(
            request=request, batch_id=2, device=1, dispatched_s=0.25, completed_s=0.5
        )
        message = codec.decode_result(codec.result_from_outcome(outcome))
        assert message.to_outcome(request) == outcome
        with pytest.raises(ValueError):
            codec.decode_result(b"short")


# -- loopback helpers ---------------------------------------------------------------


async def _recv_events(reader, decoder, count=1, timeout=5.0):
    """Read frames/defects off a raw connection until ``count`` arrived."""
    events = []
    while len(events) < count:
        data = await asyncio.wait_for(reader.read(64 * 1024), timeout)
        if not data:
            defect = decoder.at_eof()
            if defect is not None:
                events.append(defect)
            break
        events.extend(decoder.feed(data))
    return events


def _error_reply(frame):
    assert isinstance(frame, Frame) and frame.msg_type == MessageType.ERROR
    return protocol.decode_error(frame.payload)


class _ThreadedServer:
    """A NetServer on its own thread+loop, for the blocking-client tests."""

    def __init__(self, **options):
        self._options = options
        self._loop = asyncio.new_event_loop()
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self.address = None
        self.net = None

    def _run(self):
        asyncio.set_event_loop(self._loop)
        self._stop = self._loop.create_future()

        async def main():
            async with NetServer(**self._options) as net:
                self.net = net
                self.address = net.address
                self._ready.set()
                await self._stop

        self._loop.run_until_complete(main())
        self._loop.close()

    def __enter__(self):
        self._thread.start()
        assert self._ready.wait(5.0), "server did not start"
        return self

    def __exit__(self, *exc_info):
        self._loop.call_soon_threadsafe(lambda: self._stop.done() or self._stop.set_result(None))
        self._thread.join(5.0)


# -- deterministic replay over real sockets -----------------------------------------


class TestLoopbackReplay:
    def test_wire_replay_is_bit_for_bit_with_simulation(self):
        trace = bursty_trace(1500.0, 0.2, seed=11, tenants=5)
        reference = Server(devices=4, params="I").simulate(list(trace), label="net-replay")
        report = replay_trace(trace, devices=4, params="I", label="net-replay")
        assert report.outcomes == reference.outcomes
        assert report.metrics == reference.metrics
        wired, in_process = report.to_dict(), reference.to_dict()
        assert wired.pop("wire")  # only the wire block differs
        assert wired == in_process
        assert report.wire["connections"] == 1
        assert report.wire["frames_received"] == len(trace) + 2  # hello + submits + drain
        assert report.wire["errors_sent"] == 0

    def test_replay_drain_returns_every_outcome(self):
        trace = steady_trace(rate_rps=600.0, duration_s=0.1, seed=2)

        async def scenario():
            async with NetServer(mode="replay", devices=2, params="I") as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                futures = [
                    client.submit_nowait(request)
                    for request in sorted(trace, key=lambda r: r.arrival_s)
                ]
                await client.drain()
                outcomes = await asyncio.gather(*futures)
                await client.close()
                return outcomes

        outcomes = asyncio.run(scenario())
        assert len(outcomes) == len(trace)
        assert {o.request.request_id for o in outcomes} == {
            r.request_id for r in trace
        }


# -- typed error replies, server keeps serving --------------------------------------


class TestLoopbackErrors:
    def _scenario(self, coro):
        return asyncio.run(coro)

    def test_corrupted_checksum_gets_error_and_connection_survives(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                decoder = FrameDecoder()
                bad = bytearray(encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0)))
                bad[-1] ^= 0xFF
                writer.write(bytes(bad))
                (event,) = await _recv_events(reader, decoder)
                assert _error_reply(event).code == ErrorCode.BAD_CHECKSUM
                # Same connection still serves: a clean ping gets its pong.
                writer.write(encode_frame(MessageType.PING, protocol.encode_ping(2, 0.0)))
                (event,) = await _recv_events(reader, decoder)
                assert event.msg_type == MessageType.PONG
                writer.close()
                return net.stats.errors_sent

        assert self._scenario(scenario()) == 1

    def test_unsupported_version_gets_error_and_connection_survives(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                decoder = FrameDecoder()
                writer.write(
                    encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0), version=9)
                )
                (event,) = await _recv_events(reader, decoder)
                assert _error_reply(event).code == ErrorCode.UNSUPPORTED_VERSION
                writer.write(encode_frame(MessageType.PING, protocol.encode_ping(2, 0.0)))
                (event,) = await _recv_events(reader, decoder)
                assert event.msg_type == MessageType.PONG
                writer.close()

        self._scenario(scenario())

    def test_bad_magic_closes_connection_but_server_keeps_serving(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                decoder = FrameDecoder()
                good = encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0))
                writer.write(b"XXXX" + good[4:])
                (event,) = await _recv_events(reader, decoder)
                assert _error_reply(event).code == ErrorCode.BAD_MAGIC
                assert await _recv_events(reader, decoder) == []  # server hung up
                writer.close()
                # ... but the server itself is alive: new connections serve.
                client = await AsyncNetClient.connect(host, port)
                await client.ping()
                await client.close()

        self._scenario(scenario())

    def test_truncated_frame_gets_error_at_eof(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0))[:10])
                writer.write_eof()  # half-close: the reply path stays open
                (event,) = await _recv_events(reader, FrameDecoder())
                assert _error_reply(event).code == ErrorCode.TRUNCATED
                writer.close()

        self._scenario(scenario())

    def test_unknown_message_type_gets_typed_error(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                decoder = FrameDecoder()
                writer.write(encode_frame(200, b""))
                (event,) = await _recv_events(reader, decoder)
                assert _error_reply(event).code == ErrorCode.UNKNOWN_TYPE
                writer.write(encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0)))
                (event,) = await _recv_events(reader, decoder)
                assert event.msg_type == MessageType.PONG
                writer.close()

        self._scenario(scenario())

    def test_malformed_submit_gets_bad_message_error(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(encode_frame(MessageType.SUBMIT, b"\x00\x01"))
                (event,) = await _recv_events(reader, FrameDecoder())
                assert _error_reply(event).code == ErrorCode.BAD_MESSAGE
                writer.close()

        self._scenario(scenario())

    def test_version_negotiation_failure_is_a_typed_error(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                with pytest.raises(NetError) as excinfo:
                    await AsyncNetClient.connect(host, port, versions=(9,))
                assert excinfo.value.reply.code == ErrorCode.UNSUPPORTED_VERSION

        self._scenario(scenario())

    def test_unknown_model_is_rejected_per_request(self):
        # The client library refuses to build such a request locally, so the
        # server-side rejection needs a hand-crafted frame.
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                reader, writer = await asyncio.open_connection(host, port)
                decoder = FrameDecoder()
                payload = codec.encode_submit(7, "t0", "inference", 1, model="NN-9000")
                writer.write(encode_frame(MessageType.SUBMIT, payload))
                (event,) = await _recv_events(reader, decoder)
                reply = _error_reply(event)
                assert reply.code == ErrorCode.SERVER_ERROR
                assert reply.request_id == 7
                # The connection — and the server — keep serving afterwards.
                writer.write(encode_frame(MessageType.PING, protocol.encode_ping(1, 0.0)))
                (event,) = await _recv_events(reader, decoder)
                assert event.msg_type == MessageType.PONG
                writer.close()

        self._scenario(scenario())

    def test_params_mismatched_ciphertexts_are_rejected(self):
        async def scenario():
            async with NetServer(mode="live", devices=1, params="I") as net:
                host, port = net.address
                client = await AsyncNetClient.connect(host, port)
                wrong = lwe_to_bytes([LweCiphertext.trivial(0, 8, TOY_PARAMETERS)])
                with pytest.raises(NetError) as excinfo:
                    await client.submit("t0", "bootstrap", 1, ciphertexts=wrong)
                assert excinfo.value.reply.code == ErrorCode.BAD_MESSAGE
                right = [LweCiphertext.trivial(m, 8, PARAM_SET_I) for m in range(2)]
                outcome = await client.submit("t0", "bootstrap", 2, ciphertexts=right)
                assert outcome.completed_s > 0.0
                await client.close()

        self._scenario(scenario())


# -- live serving -------------------------------------------------------------------


class TestLiveServing:
    def test_sync_client_submits_and_pings(self):
        with _ThreadedServer(mode="live", devices=2, params="I") as served:
            host, port = served.address
            with NetClient(host, port) as client:
                assert client.negotiated_version == PROTOCOL_VERSION
                rtt = client.ping()
                assert rtt > 0.0
                outcome = client.submit("tenant0", "bootstrap", 8)
                assert outcome.request.items == 8
                assert outcome.completed_s >= outcome.dispatched_s
                assert len(client.rtts_s) == 2

    def test_concurrent_connections_multiplex(self):
        async def scenario():
            async with NetServer(mode="live", devices=2, params="I") as net:
                host, port = net.address
                clients = [await AsyncNetClient.connect(host, port) for _ in range(3)]
                jobs = [
                    client.submit(f"tenant{index}", "gate", 4)
                    for index, client in enumerate(clients)
                    for _ in range(5)
                ]
                outcomes = await asyncio.gather(*jobs)
                for client in clients:
                    await client.close()
                return outcomes, net.stats.connections

        outcomes, connections = asyncio.run(scenario())
        assert len(outcomes) == 15 and connections == 3
        assert len({o.request.request_id for o in outcomes}) >= 5

    def test_closed_loop_loadgen_reports_wire_percentiles(self):
        trace = steady_trace(rate_rps=500.0, duration_s=0.08, seed=5, tenants=3)
        report = closed_loop(trace, connections=3, devices=2, params="I")
        assert len(report.outcomes) == len(trace)
        assert report.wire["connections"] == 3
        assert report.wire["rtt_samples"] == len(trace)
        assert 0.0 < report.wire["rtt_p50_ms"] <= report.wire["rtt_p99_ms"]
        assert report.wire["wire_requests_per_s"] > 0.0
        assert "wire:" in report.render()

    def test_graceful_shutdown_publishes_report(self):
        async def scenario():
            net = NetServer(mode="live", devices=1, params="I")
            await net.start()
            host, port = net.address
            client = await AsyncNetClient.connect(host, port)
            await client.submit("t0", "bootstrap", 2)
            await client.close()
            await net.aclose()
            with pytest.raises(ConnectionError):
                await asyncio.open_connection(host, port)
            return net.last_report

        report = asyncio.run(scenario())
        assert report is not None and len(report.outcomes) == 1
        assert report.wire["frames_received"] >= 2  # hello + submit
