"""Tests for the netlist compiler and the TFHE parameter sweep."""

from __future__ import annotations

import pytest

from repro.analysis.parameter_sweep import parameter_sweep
from repro.apps.boolean_circuits import RippleCarryAdder
from repro.arch.accelerator import StrixAccelerator
from repro.params import PARAM_SET_I, TOY_PARAMETERS
from repro.sim.compiler import Netlist, compile_netlist, full_adder_netlist
from repro.sim.scheduler import StrixScheduler


class TestNetlist:
    def _tiny_netlist(self) -> Netlist:
        netlist = Netlist(TOY_PARAMETERS, name="tiny")
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        c = netlist.add_input("c")
        ab = netlist.add_gate("and", "ab", a, b)
        netlist.add_gate("xor", "out", ab, c)
        return netlist

    def test_pbs_count(self):
        assert self._tiny_netlist().pbs_count() == 2

    def test_not_gates_are_free(self):
        netlist = Netlist(TOY_PARAMETERS)
        a = netlist.add_input("a")
        netlist.add_gate("not", "na", a)
        assert netlist.pbs_count() == 0

    def test_levelize_respects_dependencies(self):
        levels = self._tiny_netlist().levelize()
        assert len(levels) == 2
        assert levels[0][0].output == "ab"
        assert levels[1][0].output == "out"

    def test_duplicate_wire_rejected(self):
        netlist = Netlist(TOY_PARAMETERS)
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("and", "c", "a", "b")
        with pytest.raises(ValueError):
            netlist.add_gate("or", "c", "a", "b")

    def test_undefined_wire_rejected(self):
        netlist = Netlist(TOY_PARAMETERS)
        with pytest.raises(ValueError):
            netlist.add_gate("and", "x", "ghost", "ghost2")

    def test_unknown_gate_rejected(self):
        netlist = Netlist(TOY_PARAMETERS)
        netlist.add_input("a")
        with pytest.raises(ValueError):
            netlist.add_gate("nandxor", "x", "a", "a")

    def test_linear_operations_do_not_add_levels(self):
        netlist = Netlist(TOY_PARAMETERS)
        a = netlist.add_input("a")
        b = netlist.add_input("b")
        s = netlist.add_linear("s", (a, b), cost=10)
        netlist.add_gate("and", "out", s, a)
        assert len(netlist.levelize()) == 2  # linear level 0, gate level 1


class TestCompileNetlist:
    def test_adder_netlist_matches_circuit_gate_count(self):
        bits = 8
        netlist = full_adder_netlist(PARAM_SET_I, bits)
        # The netlist form saves the gates of the first (carry-in-free) bit.
        assert netlist.pbs_count() == RippleCarryAdder.gate_count(bits) - 3

    def test_compiled_graph_preserves_pbs_count(self):
        netlist = full_adder_netlist(PARAM_SET_I, 8)
        graph = compile_netlist(netlist, instances=10)
        assert graph.total_pbs() == 10 * netlist.pbs_count()

    def test_instances_must_be_positive(self):
        with pytest.raises(ValueError):
            compile_netlist(full_adder_netlist(PARAM_SET_I, 4), instances=0)

    def test_compiled_graph_runs_on_the_scheduler(self):
        scheduler = StrixScheduler(StrixAccelerator())
        graph = compile_netlist(full_adder_netlist(PARAM_SET_I, 16), instances=64)
        result = scheduler.run(graph)
        assert result.total_time_s > 0
        assert result.total_pbs == graph.total_pbs()

    def test_more_instances_never_reduce_throughput(self):
        scheduler = StrixScheduler(StrixAccelerator())
        netlist = full_adder_netlist(PARAM_SET_I, 8)
        small = scheduler.run(compile_netlist(netlist, instances=8))
        large = scheduler.run(compile_netlist(netlist, instances=512))
        assert large.pbs_throughput >= small.pbs_throughput


class TestParameterSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return parameter_sweep(degrees=[1024, 2048, 4096], levels=[2, 3])

    def test_covers_grid(self, sweep):
        assert len(sweep.points) == 6
        assert len(sweep.by_degree(1024)) == 2

    def test_throughput_decreases_with_degree(self, sweep):
        lb2 = [point for point in sweep.points if point.decomposition_levels == 2]
        throughputs = [point.throughput_pbs_per_s for point in sorted(lb2, key=lambda p: p.polynomial_degree)]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_throughput_decreases_with_levels(self, sweep):
        n1024 = {point.decomposition_levels: point for point in sweep.by_degree(1024)}
        assert n1024[2].throughput_pbs_per_s > n1024[3].throughput_pbs_per_s

    def test_bandwidth_grows_with_degree(self, sweep):
        lb2 = sorted(
            (p for p in sweep.points if p.decomposition_levels == 2),
            key=lambda p: p.polynomial_degree,
        )
        bandwidths = [point.required_bandwidth_gbps for point in lb2]
        assert bandwidths == sorted(bandwidths)

    def test_core_batch_shrinks_with_degree(self, sweep):
        lb2 = sorted(
            (p for p in sweep.points if p.decomposition_levels == 2),
            key=lambda p: p.polynomial_degree,
        )
        batches = [point.core_batch for point in lb2]
        assert batches == sorted(batches, reverse=True)

    def test_set_i_point_matches_table_v(self, sweep):
        point = next(
            p for p in sweep.points
            if p.polynomial_degree == 1024 and p.decomposition_levels == 2
        )
        assert point.throughput_pbs_per_s == pytest.approx(75000, rel=0.05)

    def test_render(self, sweep):
        assert "sensitivity" in sweep.render()
