"""Signed gadget decomposition.

Both the external product (blind rotation) and keyswitching decompose torus
values into a small number of signed digits in a power-of-two base, keeping
only the most significant ``levels * log2(base)`` bits (Equation 3 of the
paper).  Strix implements this step in the streaming Decomposer unit; here we
provide the bit-exact reference used by the functional TFHE implementation.

The decomposition of ``a`` into digits ``d_1 .. d_l`` (``d_i`` roughly in
``[-B/2, B/2]``) satisfies

.. math::

    \\Bigl| a - \\sum_{i=1}^{l} d_i \\frac{q}{B^i} \\Bigr| \\le \\frac{q}{2 B^l}

in wrap-around distance, which is exactly the bound the paper states.
"""

from __future__ import annotations

import numpy as np

from repro.params import TFHEParameters


def decompose(
    values: np.ndarray,
    levels: int,
    log2_base: int,
    q_bits: int = 32,
) -> np.ndarray:
    """Decompose torus values into signed digits.

    Parameters
    ----------
    values:
        Array of canonical torus values (any shape).
    levels:
        Number of digits to produce.
    log2_base:
        log2 of the decomposition base ``B``.
    q_bits:
        Width of the torus modulus.

    Returns
    -------
    numpy.ndarray
        Array with one extra leading axis of length ``levels``; entry ``i``
        holds the digit that multiplies ``q / B^(i+1)``.  Digits lie in
        ``[-B/2, B/2]``.
    """
    shifted, base, half_base = _carry_folded_gamma(values, levels, log2_base, q_bits)
    shifts = (np.arange(levels - 1, -1, -1, dtype=np.int64) * log2_base).reshape(
        (levels,) + (1,) * shifted.ndim
    )
    return ((shifted[None] >> shifts) & (base - 1)) - half_base


def decompose_rows(
    values: np.ndarray,
    levels: int,
    log2_base: int,
    q_bits: int = 32,
) -> np.ndarray:
    """Signed digits with the level axis *inside*: shape ``(..., levels, N)``.

    Bit-identical digits to :func:`decompose`, but laid out so that the
    digit polynomials of one input polynomial are adjacent — the row order
    the external product feeds to the FFT.  Emitting this layout directly
    saves the transpose copy that reordering :func:`decompose`'s
    level-major output would cost on every blind-rotation iteration of the
    vectorized kernels.
    """
    shifted, base, half_base = _carry_folded_gamma(values, levels, log2_base, q_bits)
    shifts = (np.arange(levels - 1, -1, -1, dtype=np.int64) * log2_base)[:, None]
    return ((shifted[..., None, :] >> shifts) & (base - 1)) - half_base


def _carry_folded_gamma(
    values: np.ndarray, levels: int, log2_base: int, q_bits: int
) -> tuple[np.ndarray, int, int]:
    """Rounded ``gamma`` with every balancing carry pre-applied.

    Rounds to the closest multiple of ``q / B^levels`` (an integer gamma in
    ``[0, B^levels)``) and adds ``B/2 * (1 + B + .. + B^(levels-1))``, which
    applies all the digit-balancing carries at once: each signed digit then
    comes out of one shift/mask/offset, bit-identical to propagating the
    carries level by level but without the sequential loop (this is the hot
    inner step of both the scalar and the batched external product).  The
    sum stays below ``2 * B^levels``, far inside int64.
    """
    if levels * log2_base > q_bits:
        raise ValueError(
            f"decomposition keeps {levels * log2_base} bits which exceeds the "
            f"{q_bits}-bit modulus"
        )
    values = np.asarray(values, dtype=np.int64)
    base = 1 << log2_base
    half_base = base >> 1
    kept_bits = levels * log2_base
    dropped_bits = q_bits - kept_bits
    if dropped_bits > 0:
        gamma = (values + (1 << (dropped_bits - 1))) >> dropped_bits
    else:
        gamma = values
    offset = half_base * (((1 << kept_bits) - 1) // (base - 1))
    return gamma + offset, base, half_base


def recompose(
    digits: np.ndarray,
    log2_base: int,
    q_bits: int = 32,
) -> np.ndarray:
    """Rebuild the rounded torus values from their signed digits.

    Inverse (up to the rounding error bound) of :func:`decompose`; used by
    the property tests.
    """
    digits = np.asarray(digits, dtype=np.int64)
    levels = digits.shape[0]
    q = 1 << q_bits
    result = np.zeros(digits.shape[1:], dtype=np.int64)
    for level in range(levels):
        scale = 1 << (q_bits - (level + 1) * log2_base)
        result = result + digits[level] * scale
    return np.mod(result, q)


def decompose_polynomial_list(
    polys: np.ndarray,
    levels: int,
    log2_base: int,
    q_bits: int = 32,
) -> np.ndarray:
    """Decompose a batch of polynomials into digit polynomials.

    Given an array of shape ``(m, N)`` the result has shape
    ``(m * levels, N)`` ordered as ``(poly_0 level_1 .. level_l, poly_1
    level_1 ..)``, which is the row ordering expected by the external product
    against a GGSW matrix.
    """
    polys = np.asarray(polys, dtype=np.int64)
    if polys.ndim != 2:
        raise ValueError(f"expected a 2-D array of polynomials, got shape {polys.shape}")
    # decompose_rows emits (m, levels, N) directly, so flattening the row
    # axis is a contiguous (copy-free) reshape.
    return decompose_rows(polys, levels, log2_base, q_bits).reshape(-1, polys.shape[1])


def decomposition_error_bound(levels: int, log2_base: int, q_bits: int = 32) -> int:
    """Worst-case wrap-around reconstruction error: ``q / (2 * B^levels)``."""
    return 1 << max(q_bits - levels * log2_base - 1, 0)


def decompose_for_params(
    values: np.ndarray, params: TFHEParameters, *, keyswitch: bool = False
) -> np.ndarray:
    """Convenience wrapper selecting the PBS or keyswitching decomposition."""
    if keyswitch:
        return decompose(values, params.lk, params.log2_base_ks, params.q_bits)
    return decompose(values, params.lb, params.log2_base_pbs, params.q_bits)
