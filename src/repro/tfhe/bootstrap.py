"""Programmable bootstrapping (Algorithm 1 of the paper).

PBS chains modulus switching, blind rotation, sample extraction and (in the
end-to-end form used by gates and the Deep-NN workload) keyswitching.  The
result is a *fresh* LWE ciphertext whose message is ``f(m)`` for any chosen
univariate function ``f`` — the defining feature of TFHE that Strix
accelerates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


from repro.params import TFHEParameters
from repro.tfhe.blind_rotate import (
    blind_rotate,
    make_constant_test_vector,
    make_test_vector,
)
from repro.tfhe.keys import BootstrappingKey, KeySwitchingKey
from repro.tfhe.keyswitch import keyswitch
from repro.tfhe.lwe import LweCiphertext


@dataclass
class BootstrapResult:
    """Outcome of a programmable bootstrap.

    Attributes
    ----------
    ciphertext:
        The refreshed LWE ciphertext (dimension ``n`` when keyswitching was
        applied, ``k*N`` otherwise).
    extracted:
        The intermediate ciphertext straight after sample extraction, kept
        for analysis and tests.
    """

    ciphertext: LweCiphertext
    extracted: LweCiphertext


def programmable_bootstrap(
    ciphertext: LweCiphertext,
    function: Callable[[int], int],
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
    output_delta: int | None = None,
) -> BootstrapResult:
    """Evaluate ``f`` on the encrypted message while refreshing its noise.

    Parameters
    ----------
    ciphertext:
        LWE ciphertext of dimension ``n`` encrypting ``m * delta``.
    function:
        Univariate function on ``Z_p`` (``p = params.message_modulus``).
    bootstrapping_key, keyswitching_key:
        Evaluation keys.  When ``keyswitching_key`` is omitted the result
        stays under the extracted ``k*N``-dimensional key.
    output_delta:
        Optional scaling factor for the output encoding (defaults to the
        input encoding).
    """
    test_vector = make_test_vector(function, params, output_delta)
    accumulator = blind_rotate(test_vector, ciphertext, bootstrapping_key, params)
    extracted = accumulator.sample_extract(0)
    if keyswitching_key is None:
        return BootstrapResult(extracted, extracted)
    switched = keyswitch(extracted, keyswitching_key, params)
    return BootstrapResult(switched, extracted)


def bootstrap_to_sign(
    ciphertext: LweCiphertext,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
    magnitude: int | None = None,
) -> BootstrapResult:
    """Gate-bootstrapping primitive: map the phase sign onto ``±q/8``.

    Returns an encryption of ``+magnitude`` when the input phase lies in the
    lower half of the torus ``(0, q/2)`` and ``-magnitude`` otherwise.  The
    boolean gates of :mod:`repro.tfhe.gates` are built on this primitive.
    """
    value = params.q // 8 if magnitude is None else int(magnitude)
    test_vector = make_constant_test_vector(value, params)
    accumulator = blind_rotate(test_vector, ciphertext, bootstrapping_key, params)
    extracted = accumulator.sample_extract(0)
    if keyswitching_key is None:
        return BootstrapResult(extracted, extracted)
    switched = keyswitch(extracted, keyswitching_key, params)
    return BootstrapResult(switched, extracted)


def identity_bootstrap(
    ciphertext: LweCiphertext,
    bootstrapping_key: BootstrappingKey,
    params: TFHEParameters,
    keyswitching_key: KeySwitchingKey | None = None,
) -> BootstrapResult:
    """Noise-refreshing bootstrap that keeps the message unchanged."""
    return programmable_bootstrap(
        ciphertext, lambda m: m, bootstrapping_key, params, keyswitching_key
    )
