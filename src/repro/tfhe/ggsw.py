"""GGSW ciphertexts, the external product and the CMux gate.

The bootstrapping key is a vector of GGSW ciphertexts, one per LWE secret
bit.  A GGSW ciphertext encrypting a small integer ``m`` is a matrix of
``(k+1) * lb`` GLWE rows; the *external product* multiplies a GLWE ciphertext
by the GGSW's hidden message by decomposing the GLWE, transforming the digit
polynomials to the Fourier domain, multiplying against the GGSW rows and
accumulating — exactly the per-iteration datapath of the Strix PBS cluster
(Decomposer → FFT → VMA → IFFT → Accumulator).

:class:`FourierGgswCiphertext` stores the rows pre-transformed, which is how
every practical TFHE implementation (and the Strix global scratchpad) holds
the bootstrapping key.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import polynomial, torus
from repro.tfhe.decomposition import decompose_polynomial_list
from repro.tfhe.glwe import GlweCiphertext


@dataclass
class GgswCiphertext:
    """A GGSW ciphertext: ``(k+1)*lb`` GLWE rows of ``k+1`` polynomials each.

    Attributes
    ----------
    rows:
        Array of shape ``((k+1)*lb, k+1, N)``.  Row ``(i*lb + l)`` is a GLWE
        encryption of zero with ``m * q / B^(l+1)`` added to polynomial ``i``.
    params:
        Parameter set of the ciphertext.
    """

    rows: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        expected = ((self.params.k + 1) * self.params.lb, self.params.k + 1, self.params.N)
        self.rows = torus.reduce(np.asarray(self.rows, dtype=np.int64), self.params.q)
        if self.rows.shape != expected:
            raise ValueError(f"GGSW rows must have shape {expected}, got {self.rows.shape}")

    @classmethod
    def encrypt(
        cls,
        message: int,
        key: np.ndarray,
        params: TFHEParameters,
        rng: np.random.Generator,
        noise_std: float | None = None,
    ) -> "GgswCiphertext":
        """Encrypt a small integer message (typically a secret key bit)."""
        k, n_poly, lb = params.k, params.N, params.lb
        q = params.q
        rows = np.zeros(((k + 1) * lb, k + 1, n_poly), dtype=np.int64)
        for i in range(k + 1):
            for level in range(lb):
                zero_ct = GlweCiphertext.encrypt(
                    np.zeros(n_poly, dtype=np.int64), key, params, rng, noise_std
                )
                row = np.concatenate([zero_ct.mask, zero_ct.body[None, :]], axis=0)
                scale = q >> ((level + 1) * params.log2_base_pbs)
                row[i, 0] = (row[i, 0] + message * scale) % q
                rows[i * lb + level] = row
        return cls(rows, params)

    def to_fourier(self) -> "FourierGgswCiphertext":
        """Pre-transform every row polynomial to the folded Fourier domain."""
        transform = polynomial.get_transform(self.params.N)
        centered = torus.to_signed(self.rows, self.params.q)
        spectra = transform.forward(centered.astype(np.float64))
        return FourierGgswCiphertext(spectra, self.params)


@dataclass
class FourierGgswCiphertext:
    """A GGSW ciphertext with rows stored in the folded Fourier domain.

    ``spectra`` has shape ``((k+1)*lb, k+1, N/2)`` of complex values.
    """

    spectra: np.ndarray
    params: TFHEParameters

    def __post_init__(self) -> None:
        expected = (
            (self.params.k + 1) * self.params.lb,
            self.params.k + 1,
            self.params.N // 2,
        )
        self.spectra = np.asarray(self.spectra, dtype=np.complex128)
        if self.spectra.shape != expected:
            raise ValueError(
                f"Fourier GGSW spectra must have shape {expected}, got {self.spectra.shape}"
            )

    def external_product(self, glwe: GlweCiphertext) -> GlweCiphertext:
        """Compute ``GGSW(m) ⊡ GLWE(mu) = GLWE(m * mu)``.

        This follows the exact dataflow of one blind rotation iteration in
        the Strix PBS cluster: decompose the accumulator, transform the digit
        polynomials, multiply-accumulate against the key spectra, transform
        back and accumulate in the time domain.
        """
        params = self.params
        transform = polynomial.get_transform(params.N)

        stacked = np.concatenate([glwe.mask, glwe.body[None, :]], axis=0)
        digit_polys = decompose_polynomial_list(
            stacked, params.lb, params.log2_base_pbs, params.q_bits
        )
        digit_spectra = transform.forward(digit_polys.astype(np.float64))

        # (rows, N/2) x (rows, k+1, N/2) summed over rows -> (k+1, N/2)
        accumulated = np.einsum("rf,rcf->cf", digit_spectra, self.spectra)
        result_polys = transform.inverse(accumulated)
        result = torus.reduce(np.round(result_polys).astype(np.int64), params.q)
        return GlweCiphertext(result[: params.k], result[params.k], params)

    def cmux(self, ct_false: GlweCiphertext, ct_true: GlweCiphertext) -> GlweCiphertext:
        """Homomorphic multiplexer controlled by the hidden GGSW bit.

        Returns (an encryption of) ``ct_true`` when the GGSW encrypts 1 and
        ``ct_false`` when it encrypts 0.
        """
        return ct_false + self.external_product(ct_true - ct_false)


def external_product(
    ggsw: GgswCiphertext | FourierGgswCiphertext, glwe: GlweCiphertext
) -> GlweCiphertext:
    """External product accepting either a plain or Fourier-domain GGSW."""
    if isinstance(ggsw, GgswCiphertext):
        ggsw = ggsw.to_fourier()
    return ggsw.external_product(glwe)


def cmux(
    ggsw: GgswCiphertext | FourierGgswCiphertext,
    ct_false: GlweCiphertext,
    ct_true: GlweCiphertext,
) -> GlweCiphertext:
    """CMux accepting either a plain or Fourier-domain GGSW selector."""
    if isinstance(ggsw, GgswCiphertext):
        ggsw = ggsw.to_fourier()
    return ggsw.cmux(ct_false, ct_true)
