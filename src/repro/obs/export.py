"""Trace exporters: JSONL span dumps and Chrome ``trace_event`` timelines.

Two file formats over :class:`~repro.obs.trace.Span` lists:

* **JSONL** (:func:`spans_to_jsonl` / :func:`write_jsonl`) — one JSON
  object per span per line with sorted keys, the machine-readable dump
  CI archives and sweeps post-process;
* **Chrome trace_event** (:func:`chrome_trace` / :func:`write_chrome_trace`)
  — the JSON timeline format ``chrome://tracing`` and Perfetto load: each
  request renders as its own lane with ``queue`` → ``wait`` → ``execute``
  slices, and each device as a lane of the batches (or pipeline stages)
  it ran, so "where did request X spend its time" is one click.

The Prometheus text exposition lives with the registry
(:meth:`repro.obs.metrics.MetricsRegistry.render_prometheus`); the wire
exporter is the net protocol's ``STATS`` frame
(:func:`repro.net.protocol.encode_stats`).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.obs.trace import Span


def spans_to_jsonl(spans: Iterable[Span]) -> str:
    """Serialize spans as JSON Lines (one sorted-key object per line)."""
    return "".join(
        json.dumps(span.to_dict(), sort_keys=True) + "\n" for span in spans
    )


def write_jsonl(spans: Iterable[Span], path: str) -> int:
    """Write a JSONL span dump to ``path``; returns the span count."""
    spans = list(spans)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(spans_to_jsonl(spans))
    return len(spans)


def _us(t_s: float) -> float:
    """Chrome trace timestamps are microseconds."""
    return t_s * 1e6


#: ``pid`` lanes of the Chrome trace: requests on one, devices on the other.
_REQUESTS_PID = 0
_DEVICES_PID = 1


def chrome_trace(spans: Sequence[Span]) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Per request (``pid`` 0, one ``tid`` per request id): a ``queue`` slice
    from enqueue to batch admission, a ``wait`` slice from admission to
    device start, an ``execute`` slice over the device window, and — when
    the span travelled the wire — a ``reply`` instant.  Per device
    (``pid`` 1, one ``tid`` per device index): one slice per batch, or one
    per pipeline stage when the layout staged it.  Load the result in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events: list[dict] = [
        {
            "ph": "M",
            "pid": _REQUESTS_PID,
            "name": "process_name",
            "args": {"name": "requests"},
        },
        {
            "ph": "M",
            "pid": _DEVICES_PID,
            "name": "process_name",
            "args": {"name": "devices"},
        },
    ]
    batches_drawn: set[int] = set()
    for span in spans:
        tid = span.request_id
        events.append(
            {
                "ph": "M",
                "pid": _REQUESTS_PID,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": f"req {span.request_id} ({span.tenant})"},
            }
        )
        args = {
            "tenant": span.tenant,
            "kind": span.kind,
            "items": span.items,
            "pbs": span.pbs,
            "batch_id": span.batch_id,
            "flush_reason": span.flush_reason,
        }
        if span.admit_s is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": _REQUESTS_PID,
                    "tid": tid,
                    "cat": "serve",
                    "name": "queue",
                    "ts": _us(span.enqueue_s),
                    "dur": _us(span.admit_s - span.enqueue_s),
                    "args": args,
                }
            )
        if span.admit_s is not None and span.execute_s is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": _REQUESTS_PID,
                    "tid": tid,
                    "cat": "serve",
                    "name": "wait",
                    "ts": _us(span.admit_s),
                    "dur": _us(span.execute_s - span.admit_s),
                    "args": args,
                }
            )
        if span.execute_s is not None and span.complete_s is not None:
            events.append(
                {
                    "ph": "X",
                    "pid": _REQUESTS_PID,
                    "tid": tid,
                    "cat": "serve",
                    "name": "execute",
                    "ts": _us(span.execute_s),
                    "dur": _us(span.complete_s - span.execute_s),
                    "args": {**args, "device": span.device, "devices": list(span.devices)},
                }
            )
        if span.reply_s is not None:
            events.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": _REQUESTS_PID,
                    "tid": tid,
                    "cat": "net",
                    "name": "reply",
                    "ts": _us(span.reply_s),
                    "args": {"request_id": span.request_id},
                }
            )
        # Device lanes: one slice per batch (or per pipeline stage), drawn
        # from the first span of each batch — every member shares the window.
        if (
            span.batch_id is None
            or span.batch_id in batches_drawn
            or span.execute_s is None
            or span.complete_s is None
        ):
            continue
        batches_drawn.add(span.batch_id)
        if span.stages:
            for stage in span.stages:
                events.append(
                    {
                        "ph": "X",
                        "pid": _DEVICES_PID,
                        "tid": stage.device,
                        "cat": "device",
                        "name": f"batch {span.batch_id} stage {stage.stage}",
                        "ts": _us(stage.start_s),
                        "dur": _us(stage.end_s - stage.start_s),
                        "args": {"batch_id": span.batch_id, "pbs": stage.pbs},
                    }
                )
        else:
            events.append(
                {
                    "ph": "X",
                    "pid": _DEVICES_PID,
                    "tid": span.device if span.device is not None else 0,
                    "cat": "device",
                    "name": f"batch {span.batch_id}",
                    "ts": _us(span.execute_s),
                    "dur": _us(span.complete_s - span.execute_s),
                    "args": {"batch_id": span.batch_id, "flush_reason": span.flush_reason},
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(spans: Sequence[Span], path: str) -> int:
    """Write a Chrome trace to ``path``; returns the event count."""
    trace = chrome_trace(spans)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, sort_keys=True)
    return len(trace["traceEvents"])
