"""``run()``: the single entry point of the execution runtime.

One call executes one workload on one backend::

    from repro import run

    result = run(netlist, backend="strix-sim", params="I", instances=1024)

and because every backend returns the same :class:`RunResult`, comparing
platforms is a loop over backend names — the workload definition never
changes.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.params import TFHEParameters
from repro.runtime.backend import Backend, get_backend
from repro.runtime.result import RunResult
from repro.runtime.session import Session
from repro.runtime.workload import WorkloadLike


def run(
    workload: WorkloadLike,
    backend: str | Backend = "strix-sim",
    params: TFHEParameters | str | None = None,
    *,
    session: Session | None = None,
    inputs: Any = None,
    instances: int = 1,
    **options: Any,
) -> RunResult:
    """Execute a workload on a named (or explicit) backend.

    Parameters
    ----------
    workload:
        A :class:`~repro.sim.compiler.Netlist`, a
        :class:`~repro.sim.graph.ComputationGraph`, a
        :class:`~repro.apps.deep_nn.DeepNNModel`, or a Deep-NN model name
        (``"NN-20"``).
    backend:
        Registry name (``"reference"``, ``"strix-sim"``, ``"cpu-analytical"``,
        ``"gpu-analytical"``, ``"strix-cluster"``) or a :class:`Backend`
        instance for configured backends (e.g.
        ``AnalyticalBackend("cpu", threads=48)``).  Unknown names raise the
        shared did-you-mean error
        (:class:`~repro.errors.UnknownNameError`), listing every
        registered backend.
    params:
        Parameter set (object or name) overriding the workload's own; netlists
        and graphs are rebound structurally, so the same circuit can be
        executed functionally on TOY parameters and simulated under set I.
    session:
        Key-owning :class:`Session`; required semantics only for the
        reference backend (created on demand there), carries the accelerator
        configuration for the simulator.
    inputs:
        Primary-input values for functional execution (reference backend).
    instances:
        Netlist replication factor — the batching knob.
    options:
        Additional backend-specific keywords (e.g. ``outputs=`` for the
        reference backend).  The ``"strix-cluster"`` backend understands
        five cluster-shaping options, all string-registered with
        did-you-mean errors:

        * ``devices=N`` — number of simulated Strix chips (default 4);
        * ``policy=`` — sharding policy: ``"round-robin"`` /
          ``"least-loaded"`` / ``"affinity"`` / ``"key-affinity"``
          (:mod:`repro.serve.sharding`);
        * ``layout=`` — placement layout: ``"data-parallel"`` (per-node
          ciphertext splits), ``"pipeline"`` (stage-per-device with
          inter-stage transfers) or ``"elastic"`` (autoscaled active
          subset) — see :mod:`repro.sched.layouts`;
        * ``cost_model=`` — serving batch pricing: ``"analytical"``
          (closed-form epoch stream) or ``"event"`` (cycle-level
          scheduler on the batch's real graph) — see
          :mod:`repro.sched.cost`;
        * ``cost_cache_capacity=`` — entries of the schedule cache that
          memoizes event-model pricing by batch shape (``0`` disables;
          memoized pricing is bit-for-bit) — see :mod:`repro.sched.memo`.

        ``run("NN-100", backend="strix-cluster", devices=4,
        layout="pipeline")`` is the canonical multi-device call.
    """
    resolved = backend if isinstance(backend, Backend) else get_backend(backend)
    return resolved.run(
        workload,
        params=params,
        session=session,
        inputs=inputs,
        instances=instances,
        **options,
    )


def compare(
    workload: WorkloadLike,
    backends: Iterable[str | Backend] = ("strix-sim", "cpu-analytical", "gpu-analytical"),
    params: TFHEParameters | str | None = None,
    **run_options: Any,
) -> list[RunResult]:
    """Run one workload on several backends and return all results.

    A convenience over calling :func:`run` in a loop; the default backend
    set is the paper's comparison (Strix vs CPU vs GPU).
    """
    return [run(workload, backend=backend, params=params, **run_options) for backend in backends]
