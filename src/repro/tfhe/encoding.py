"""Message encoding on the discretized torus.

TFHE places a small integer message in the most significant bits of a torus
value.  With ``p = 2**message_bits`` possible messages and one reserved
padding bit, the scaling factor is ``delta = q / (2 * p)``, so messages live
in the lower half of the torus and blind rotation's negacyclic wrap never
corrupts a valid message.
"""

from __future__ import annotations

import numpy as np

from repro.params import TFHEParameters
from repro.tfhe import torus


def encode(message: int, params: TFHEParameters) -> int:
    """Encode an integer message ``0 <= message < p`` as a torus value."""
    p = params.message_modulus
    if not 0 <= message < p:
        raise ValueError(f"message {message} out of range [0, {p})")
    return (message * params.delta) % params.q


def decode(value: int, params: TFHEParameters) -> int:
    """Decode a (noisy) torus value back to the nearest message.

    The result is reduced modulo ``2 * p``; callers that respect the padding
    bit always obtain a value below ``p``.
    """
    p = params.message_modulus
    scaled = (int(value) + params.delta // 2) // params.delta
    return scaled % (2 * p)


def encode_array(messages: np.ndarray, params: TFHEParameters) -> np.ndarray:
    """Vectorized :func:`encode`."""
    messages = np.asarray(messages, dtype=np.int64)
    p = params.message_modulus
    if np.any((messages < 0) | (messages >= p)):
        raise ValueError(f"messages out of range [0, {p})")
    return torus.reduce(messages * params.delta, params.q)


def decode_array(values: np.ndarray, params: TFHEParameters) -> np.ndarray:
    """Vectorized :func:`decode`."""
    values = np.asarray(values, dtype=np.int64)
    p = params.message_modulus
    scaled = (values + params.delta // 2) // params.delta
    return np.mod(scaled, 2 * p)


def encode_boolean(value: bool, params: TFHEParameters) -> int:
    """Encode a boolean as ``+q/8`` (true) or ``-q/8`` (false).

    This is the encoding used by TFHE gate bootstrapping: the two values sit
    in opposite halves of the torus so a sign test distinguishes them.
    """
    eighth = params.q // 8
    return eighth if value else (params.q - eighth)


def decode_boolean(value: int, params: TFHEParameters) -> bool:
    """Decode a (noisy) gate-bootstrapping torus value to a boolean."""
    signed = torus.to_signed(int(value), params.q)
    return signed > 0
