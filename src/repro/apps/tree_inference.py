"""Homomorphic decision-tree inference.

The paper motivates TFHE with workloads that CKKS handles poorly:
comparisons, branches and look-ups — the building blocks of tree-based
machine-learning models (its reference [41], "Privacy-preserving tree-based
inference with fully homomorphic encryption").  This module implements a
small but complete homomorphic decision-tree evaluator:

* every internal node compares an encrypted feature against a plaintext
  threshold with one programmable bootstrap (a threshold LUT);
* the comparison bit selects between the two subtree results with a
  two-PBS multiplexer (the selector bit is packed into the upper half of the
  message space and a LUT gates each branch), so the decision path never
  leaks.

Leaf labels are binary (the usual binary-classification setting), which lets
every intermediate value fit in the 2-bit message space of the evaluation
parameter sets.  The module also produces the computation graph of a whole
forest so the simulator can project the workload onto Strix and the
baselines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.params import TFHEParameters
from repro.sim.graph import ComputationGraph
from repro.tfhe import encoding
from repro.tfhe.context import TFHEContext
from repro.tfhe.lut import LookUpTable, threshold_lut
from repro.tfhe.lwe import LweCiphertext


@dataclass
class DecisionNode:
    """One internal node: go right when ``feature >= threshold``."""

    feature: int
    threshold: int
    left: "DecisionNode | Leaf"
    right: "DecisionNode | Leaf"


@dataclass
class Leaf:
    """A leaf holding the predicted class label (0 or 1)."""

    label: int


@dataclass
class DecisionTree:
    """A plaintext decision tree over integer features in ``[0, p)``."""

    root: DecisionNode | Leaf
    num_features: int

    def predict(self, features: list[int]) -> int:
        """Plaintext inference (reference for the homomorphic evaluator)."""
        node = self.root
        while isinstance(node, DecisionNode):
            node = node.right if features[node.feature] >= node.threshold else node.left
        return node.label

    def depth(self) -> int:
        """Tree depth (a bare leaf has depth 0)."""

        def _depth(node) -> int:
            if isinstance(node, Leaf):
                return 0
            return 1 + max(_depth(node.left), _depth(node.right))

        return _depth(self.root)

    def internal_nodes(self) -> int:
        """Number of comparison nodes."""

        def _count(node) -> int:
            if isinstance(node, Leaf):
                return 0
            return 1 + _count(node.left) + _count(node.right)

        return _count(self.root)

    @classmethod
    def random(
        cls, depth: int, num_features: int, params: TFHEParameters, seed: int = 0
    ) -> "DecisionTree":
        """Generate a random complete tree of the given depth."""
        rng = np.random.default_rng(seed)
        p = params.message_modulus

        def _build(level: int):
            if level == 0:
                return Leaf(int(rng.integers(0, 2)))
            return DecisionNode(
                feature=int(rng.integers(0, num_features)),
                threshold=int(rng.integers(1, p)),
                left=_build(level - 1),
                right=_build(level - 1),
            )

        return cls(root=_build(depth), num_features=num_features)


class HomomorphicTreeEvaluator:
    """Evaluate a plaintext decision tree on encrypted features.

    The client encrypts its feature vector; the server knows the tree in the
    clear (the usual model-owner / data-owner split) and learns neither the
    features nor the decision path.  Requires a message space of at least
    two bits (``p >= 4``) so a selector bit and a branch bit pack together.
    """

    def __init__(self, context: TFHEContext, tree: DecisionTree):
        if context.params.message_modulus < 4:
            raise ValueError("tree evaluation needs a message modulus of at least 4")
        self.context = context
        self.tree = tree
        self.params = context.params
        p = self.params.message_modulus
        # LUTs over the packed value s = 2*bit + branch (branch in {0, 1}):
        #   taken branch:    bit * branch      -> s - 2 when s >= 2 else 0
        #   untaken branch: (1 - bit) * branch -> s     when s <  2 else 0
        self._gate_if_set = LookUpTable.from_function(
            lambda s: (s - 2) % p if s >= 2 else 0, self.params
        )
        self._gate_if_clear = LookUpTable.from_function(
            lambda s: s % p if s < 2 else 0, self.params
        )

    # -- building blocks ----------------------------------------------------------

    def _compare(self, feature_ct: LweCiphertext, threshold: int) -> LweCiphertext:
        """Encrypted ``feature >= threshold`` as a 0/1 message (one PBS)."""
        keys = self.context.server_keys
        lut = threshold_lut(threshold, self.params)
        return lut.apply(feature_ct, keys.bootstrapping_key, keys.keyswitching_key)

    def _select(
        self, bit: LweCiphertext, if_true: LweCiphertext, if_false: LweCiphertext
    ) -> LweCiphertext:
        """Encrypted multiplexer over 0/1 messages (two PBS).

        Returns ``bit * if_true + (1 - bit) * if_false``.  Each product is
        evaluated by packing ``2*bit + value`` into one ciphertext and
        applying the corresponding gating LUT.
        """
        keys = self.context.server_keys
        packed_true = bit.scalar_multiply(2) + if_true
        packed_false = bit.scalar_multiply(2) + if_false
        taken = self._gate_if_set.apply(
            packed_true, keys.bootstrapping_key, keys.keyswitching_key
        )
        not_taken = self._gate_if_clear.apply(
            packed_false, keys.bootstrapping_key, keys.keyswitching_key
        )
        return taken + not_taken

    # -- inference ------------------------------------------------------------------

    def evaluate(self, encrypted_features: list[LweCiphertext]) -> LweCiphertext:
        """Return an encryption of the tree's (binary) prediction."""
        if len(encrypted_features) != self.tree.num_features:
            raise ValueError(
                f"expected {self.tree.num_features} encrypted features, "
                f"got {len(encrypted_features)}"
            )
        return self._evaluate_node(self.tree.root, encrypted_features)

    def _evaluate_node(self, node, features: list[LweCiphertext]) -> LweCiphertext:
        if isinstance(node, Leaf):
            return LweCiphertext.trivial(
                encoding.encode(node.label % 2, self.params), self.params.n, self.params
            )
        bit = self._compare(features[node.feature], node.threshold)
        left = self._evaluate_node(node.left, features)
        right = self._evaluate_node(node.right, features)
        return self._select(bit, right, left)

    def infer(self, features: list[int]) -> int:
        """Encrypt the features, evaluate homomorphically and decrypt."""
        encrypted = [self.context.encrypt(value) for value in features]
        return self.context.decrypt(self.evaluate(encrypted)) % 2

    def pbs_count(self) -> int:
        """Programmable bootstraps used by one inference.

        One comparison plus one two-PBS multiplexer per internal node.
        """
        return 3 * self.tree.internal_nodes()


def tree_inference_graph(
    params: TFHEParameters,
    depth: int,
    trees: int,
    samples: int,
) -> ComputationGraph:
    """Computation graph of forest inference for the simulator.

    The comparisons of one tree level are independent across trees and
    samples (they batch together); the multiplexer cascade that follows is
    sequential in the depth, with the widest level at the leaves.
    """
    if depth < 1 or trees < 1 or samples < 1:
        raise ValueError("depth, trees and samples must all be positive")
    graph = ComputationGraph(params, name=f"forest-d{depth}-t{trees}-s{samples}")
    previous = None
    for level in range(depth):
        name = f"compare_level{level}"
        comparisons = (2 ** level) * trees * samples
        graph.add_pbs_layer(name, comparisons, depends_on=[previous] if previous else [])
        previous = name
    for level in range(depth):
        name = f"select_level{level}"
        selections = 2 ** (depth - 1 - level)
        graph.add_pbs_layer(
            name, 2 * selections * trees * samples, depends_on=[previous] if previous else []
        )
        previous = name
    return graph
