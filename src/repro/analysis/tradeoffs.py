"""Table VII reproduction: TvLP vs CLP trade-off under a fixed HBM budget.

Several Strix instances with the same total parallelism (``TvLP * CLP = 32``)
but different splits are evaluated on parameter set IV with the external
bandwidth capped at 300 GB/s.  More cores (high TvLP) keeps the design
compute bound at the cost of single-PBS latency; more lanes (high CLP)
shrinks the gap between bootstrapping-key fetches until the design becomes
memory bound and throughput collapses.  The paper identifies TvLP=8 / CLP=4
as the sweet spot.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.accelerator import StrixAccelerator
from repro.arch.config import STRIX_DEFAULT, StrixConfig
from repro.params import PARAM_SET_IV, TFHEParameters


@dataclass(frozen=True)
class TradeoffPoint:
    """One row of Table VII."""

    tvlp: int
    clp: int
    throughput_pbs_per_s: float
    latency_ms: float
    required_bandwidth_gbps: float
    memory_bound: bool


@dataclass(frozen=True)
class TradeoffStudy:
    """The full Table VII sweep."""

    parameter_set: str
    available_bandwidth_gbps: float
    points: list[TradeoffPoint]

    def best_throughput_point(self) -> TradeoffPoint:
        """Operating point with the highest throughput (ties favour fewer lanes)."""
        return max(self.points, key=lambda point: (point.throughput_pbs_per_s, point.tvlp))

    def sweet_spot(self) -> TradeoffPoint:
        """The balanced point: highest throughput, then lowest latency.

        Matches the paper's criterion of balancing compute and memory: among
        the points within 1 % of the best throughput, pick the lowest
        latency one that stays compute bound if possible.
        """
        best = self.best_throughput_point().throughput_pbs_per_s
        candidates = [
            point
            for point in self.points
            if point.throughput_pbs_per_s >= 0.99 * best
        ]
        compute_bound = [point for point in candidates if not point.memory_bound]
        pool = compute_bound or candidates
        return min(pool, key=lambda point: point.latency_ms)

    def render(self) -> str:
        """Render the sweep as text."""
        lines = [
            f"TvLP vs CLP trade-off (parameter set {self.parameter_set}, "
            f"{self.available_bandwidth_gbps:.0f} GB/s available)"
        ]
        lines.append(
            f"  {'TvLP':>4} {'CLP':>4} {'Throughput (PBS/s)':>20} {'Latency (ms)':>13} "
            f"{'Req. BW (GB/s)':>15} {'Bound':>7}"
        )
        for point in self.points:
            lines.append(
                f"  {point.tvlp:>4} {point.clp:>4} {point.throughput_pbs_per_s:>20,.0f} "
                f"{point.latency_ms:>13.1f} {point.required_bandwidth_gbps:>15.0f} "
                f"{'memory' if point.memory_bound else 'compute':>7}"
            )
        spot = self.sweet_spot()
        lines.append(f"  Sweet spot: TvLP={spot.tvlp}, CLP={spot.clp}")
        return "\n".join(lines)


def tvlp_clp_tradeoff(
    params: TFHEParameters = PARAM_SET_IV,
    total_parallelism: int = 32,
    base_config: StrixConfig = STRIX_DEFAULT,
    splits: list[tuple[int, int]] | None = None,
) -> TradeoffStudy:
    """Run the Table VII sweep.

    ``splits`` defaults to the paper's five (TvLP, CLP) pairs whose product
    is ``total_parallelism``.
    """
    if splits is None:
        splits = []
        tvlp = total_parallelism // 2
        while tvlp >= 1:
            clp = total_parallelism // tvlp
            splits.append((tvlp, clp))
            tvlp //= 2
    points = []
    for tvlp, clp in splits:
        config = base_config.with_parallelism(tvlp=tvlp, clp=clp)
        accelerator = StrixAccelerator(config)
        performance = accelerator.pbs_performance(params)
        points.append(
            TradeoffPoint(
                tvlp=tvlp,
                clp=clp,
                throughput_pbs_per_s=performance.throughput_pbs_per_s,
                latency_ms=performance.latency_ms,
                required_bandwidth_gbps=performance.required_bandwidth_gbps,
                memory_bound=not performance.compute_bound,
            )
        )
    return TradeoffStudy(
        parameter_set=params.name,
        available_bandwidth_gbps=base_config.hbm_bandwidth_gbps,
        points=points,
    )
